package ckpt

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"lcpio/internal/container"
	"lcpio/internal/ec"
	"lcpio/internal/nfs"
	"lcpio/internal/obs"
)

// RestoreOptions tunes Restore.
type RestoreOptions struct {
	// Workers is the number of parallel chunk readers/decompressors
	// (0 = GOMAXPROCS).
	Workers int
	// Retry caps per-chunk re-reads of transient faults and digest
	// mismatches.
	Retry RetryPolicy
	// AllowPartial turns unrecoverable chunks into a partial restore —
	// the affected ranks come back with nil Data and are reported in
	// Report.Failed / Report.MissingRanks — instead of failing the whole
	// restore.
	AllowPartial bool
	// Mount is the simulated NFS read path (zero value = DefaultMount).
	Mount nfs.Mount
	// Bases is the base chain for delta sets (format v3), immediate base
	// first: Bases[0] holds the set this one dedups against, Bases[1:] is
	// that base's own chain. Ignored for full sets. A delta set restored
	// without its chain fails with ErrBase.
	Bases []Medium
}

func (o RestoreOptions) normalized() RestoreOptions {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	o.Retry = o.Retry.normalized()
	return o
}

// ChunkError reports one chunk that could not be recovered.
type ChunkError struct {
	Rank, Field int
	Err         error
}

func (c ChunkError) Error() string {
	return fmt.Sprintf("chunk (rank %d, field %d): %v", c.Rank, c.Field, c.Err)
}

// RestoreReport summarizes what Restore did and what it could not recover.
// The Failed, MissingRanks, ReconstructedRanks and ParityFailed lists are
// deterministic — sorted and deduplicated — regardless of worker count.
type RestoreReport struct {
	ChunksOK int
	// ChunksReread counts chunks that needed more than one read — the
	// digest caught a corrupted first read and only that chunk was
	// fetched again.
	ChunksReread int
	// ChunksReconstructed counts chunks whose re-reads were exhausted and
	// that were instead rebuilt byte-identically from the field stripe's
	// Reed–Solomon parity shards (format v2 sets only).
	ChunksReconstructed int
	// ReconstructedRanks lists ranks with at least one reconstructed
	// chunk, sorted and deduplicated.
	ReconstructedRanks []int
	// ParityChunksRead counts parity shard fetches performed for
	// reconstruction; ParityFailed lists parity shards that were
	// themselves unrecoverable (these consume the erasure budget).
	ParityChunksRead int
	ParityFailed     []ChunkError
	// Retries counts read attempts beyond the first across all chunks.
	Retries int64
	// Failed lists every chunk that stayed unrecoverable after retries
	// AND reconstruction, sorted by (rank, field) and deduplicated.
	Failed []ChunkError
	// MissingRanks lists ranks for which no field could be recovered,
	// sorted and deduplicated.
	MissingRanks []int
	// SimReadSeconds is the simulated NFS busy time of all chunk, parity
	// and manifest fetches, including re-reads and backoff.
	SimReadSeconds float64
}

// normalize makes the report's lists deterministic: sorted by (rank,
// field) and deduplicated, whatever order the restore workers produced
// them in.
func (r *RestoreReport) normalize() {
	sortChunkErrors(r.Failed)
	r.Failed = dedupChunkErrors(r.Failed)
	sortChunkErrors(r.ParityFailed)
	r.ParityFailed = dedupChunkErrors(r.ParityFailed)
	r.MissingRanks = sortedDedupInts(r.MissingRanks)
	r.ReconstructedRanks = sortedDedupInts(r.ReconstructedRanks)
}

func sortChunkErrors(errs []ChunkError) {
	sort.Slice(errs, func(a, b int) bool {
		if errs[a].Rank != errs[b].Rank {
			return errs[a].Rank < errs[b].Rank
		}
		return errs[a].Field < errs[b].Field
	})
}

// dedupChunkErrors collapses same-(rank,field) entries of a sorted list,
// keeping the first.
func dedupChunkErrors(errs []ChunkError) []ChunkError {
	out := errs[:0]
	for i, e := range errs {
		if i > 0 && e.Rank == errs[i-1].Rank && e.Field == errs[i-1].Field {
			continue
		}
		out = append(out, e)
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

func sortedDedupInts(xs []int) []int {
	if len(xs) == 0 {
		return nil
	}
	sort.Ints(xs)
	out := xs[:1]
	for _, x := range xs[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// RestoredField is one field with per-rank arrays; a rank that could not be
// recovered has a nil Data entry.
type RestoredField struct {
	Name       string
	Dims       []int
	ErrorBound float64
	Data       [][]float32
}

// Restored is the output of Restore.
type Restored struct {
	Manifest *Manifest
	Fields   []RestoredField
	Report   RestoreReport
	// Base is the restored base set when this set is a delta (format v3);
	// nil otherwise.
	Base *Restored
}

// Field returns the restored field with the given name, or nil.
func (r *Restored) Field(name string) *RestoredField {
	for i := range r.Fields {
		if r.Fields[i].Name == name {
			return &r.Fields[i]
		}
	}
	return nil
}

type chunkOutcome struct {
	data          []float32
	raw           []byte // verified compressed bytes; kept only on parity sets
	err           error
	reread        bool
	reconstructed bool
	retries       int64
	simSec        float64
}

// Restore reads a checkpoint set back: it decodes the manifest, fans chunks
// across Workers parallel readers, verifies every chunk's CRC32C digest
// before decompression, and re-reads only the chunks whose digests fail —
// transient corruption costs one extra fetch of that chunk, nothing else.
// Unrecoverable chunks fail the restore unless AllowPartial is set, in
// which case the affected ranks return nil Data and the report lists every
// failure and fully missing rank explicitly.
func Restore(med Medium, opts RestoreOptions) (*Restored, error) {
	opts = opts.normalized()
	span := obs.Start("ckpt.restore")
	defer span.End()

	// The footer/manifest fetch rides the same faulty medium as chunks, so
	// it gets the same retry budget: transient read errors and corrupted
	// first reads (digest or structure check fails) are re-read.
	var m *Manifest
	var err error
	var manifestRetries int64
	for attempt := 1; ; attempt++ {
		m, err = ReadManifest(med)
		if err == nil {
			break
		}
		if attempt >= opts.Retry.MaxAttempts ||
			!(errors.Is(err, ErrTransient) || errors.Is(err, ErrCorrupt)) {
			return nil, err
		}
		manifestRetries++
	}
	if m.IsDelta() {
		return restoreDelta(med, m, manifestRetries, opts)
	}
	n := m.NumChunks()
	nFields := len(m.Fields)
	outcomes := make([]chunkOutcome, n)

	// On parity sets every verified chunk keeps its compressed bytes so a
	// reconstruction pass can use it as a stripe source without re-reading.
	keepRaw := m.ParityRanks > 0
	var wg sync.WaitGroup
	next := make(chan int)
	go func() {
		defer close(next)
		for i := 0; i < n; i++ {
			next <- i
		}
	}()
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				outcomes[i] = restoreChunk(med, m, i, opts, keepRaw)
			}
		}()
	}
	wg.Wait()

	out := &Restored{Manifest: m, Fields: make([]RestoredField, nFields)}
	rep := &out.Report
	// The manifest fetch itself rides the simulated read path.
	rep.Retries = manifestRetries
	rep.SimReadSeconds = float64(1+manifestRetries) *
		opts.Mount.Read(int64(len(m.encode()))+footerLen).NetworkSeconds

	// Chunks that exhausted their re-reads fall back to the parity layer:
	// any <= ParityRanks lost or corrupt data chunks per field stripe are
	// rebuilt byte-identically before decode.
	if keepRaw {
		reconstructMissing(med, m, outcomes, opts, rep)
	}
	for fi, f := range m.Fields {
		out.Fields[fi] = RestoredField{
			Name:       f.Name,
			Dims:       append([]int(nil), f.Dims...),
			ErrorBound: f.ErrorBound,
			Data:       make([][]float32, m.Ranks),
		}
	}
	rankOK := make([]bool, m.Ranks)
	for i := range outcomes {
		o := &outcomes[i]
		rank, field := i/nFields, i%nFields
		rep.SimReadSeconds += o.simSec
		rep.Retries += o.retries
		if o.reread {
			rep.ChunksReread++
			obs.Add("lcpio_ckpt_chunks_reread_total", 1)
		}
		if o.err != nil {
			rep.Failed = append(rep.Failed, ChunkError{Rank: rank, Field: field, Err: o.err})
			continue
		}
		rep.ChunksOK++
		if o.reconstructed {
			rep.ChunksReconstructed++
			rep.ReconstructedRanks = append(rep.ReconstructedRanks, rank)
			obs.Add("lcpio_ckpt_chunks_reconstructed_total", 1)
		}
		rankOK[rank] = true
		out.Fields[field].Data[rank] = o.data
	}
	for r, ok := range rankOK {
		if !ok {
			rep.MissingRanks = append(rep.MissingRanks, r)
		}
	}
	rep.normalize()
	if len(rep.Failed) > 0 && !opts.AllowPartial {
		return nil, fmt.Errorf("ckpt: %d of %d chunks unrecoverable (first: %v)",
			len(rep.Failed), n, rep.Failed[0])
	}
	return out, nil
}

// reconstructMissing rebuilds data chunks whose re-reads were exhausted
// from their field stripe's Reed–Solomon parity shards. Per field: if the
// number of failed data chunks is within the erasure budget (ParityRanks),
// the surviving chunks plus as many parity shards as needed are assembled
// into a stripe — shorter chunks zero-padded to the stripe length, exactly
// as the writer folded them — and the missing shards are recomputed. Each
// rebuilt chunk must still match its manifest digest before it is decoded,
// so a reconstruction can never silently substitute wrong bytes. Failures
// here leave the chunk's original error in place and the restore degrades
// to the usual partial report.
func reconstructMissing(med Medium, m *Manifest, outcomes []chunkOutcome, opts RestoreOptions, rep *RestoreReport) {
	coder, err := ec.New(m.Ranks, m.ParityRanks)
	if err != nil {
		// Geometry outside coder limits is rejected at manifest parse; this
		// is unreachable on a set that decoded, but degrade gracefully.
		return
	}
	span := obs.Start("ckpt.reconstruct")
	defer span.End()
	nFields := len(m.Fields)
	for fi := 0; fi < nFields; fi++ {
		var failed []int
		for r := 0; r < m.Ranks; r++ {
			if outcomes[r*nFields+fi].err != nil {
				failed = append(failed, r)
			}
		}
		if len(failed) == 0 || len(failed) > m.ParityRanks {
			continue // nothing lost, or beyond the erasure budget
		}
		stripeLen := int(m.ParityChunk(fi, 0).Size)
		shards := make([][]byte, m.Ranks+m.ParityRanks)
		avail := 0
		for r := 0; r < m.Ranks; r++ {
			o := &outcomes[r*nFields+fi]
			if o.err != nil {
				continue
			}
			padded := make([]byte, stripeLen)
			copy(padded, o.raw)
			shards[r] = padded
			avail++
		}
		// Fetch just enough parity shards to reach k sources; a parity shard
		// that is itself unrecoverable consumes the erasure budget.
		for j := 0; j < m.ParityRanks && avail < m.Ranks; j++ {
			po := readVerified(med, m.ParityChunk(fi, j), opts)
			rep.SimReadSeconds += po.simSec
			rep.Retries += po.retries
			rep.ParityChunksRead++
			obs.Add("lcpio_ckpt_parity_chunks_read_total", 1)
			if po.err != nil {
				rep.ParityFailed = append(rep.ParityFailed,
					ChunkError{Rank: m.Ranks + j, Field: fi, Err: po.err})
				continue
			}
			shards[m.Ranks+j] = po.raw
			avail++
		}
		if avail < m.Ranks {
			continue // too few sources: the partial report stands
		}
		if err := coder.Reconstruct(shards, opts.Workers); err != nil {
			continue
		}
		for _, r := range failed {
			o := &outcomes[r*nFields+fi]
			c := m.Chunk(r, fi)
			blob := shards[r][:c.Size]
			if Digest(blob) != c.CRC {
				o.err = fmt.Errorf("%w: reconstructed chunk digest mismatch", ErrCorrupt)
				continue
			}
			o.err = nil
			decodeChunk(o, &m.Fields[fi], blob)
			if o.err == nil {
				o.reconstructed = true
			}
		}
	}
}

// readVerified fetches one chunk's bytes and verifies its digest,
// re-reading on transient read errors and digest mismatches with capped
// backoff. On success o.raw holds the verified bytes.
func readVerified(med Medium, c *ChunkInfo, opts RestoreOptions) chunkOutcome {
	var o chunkOutcome
	buf := make([]byte, c.Size)
	var lastErr error
	for attempt := 1; attempt <= opts.Retry.MaxAttempts; attempt++ {
		if attempt > 1 {
			o.retries++
			o.reread = true
			o.simSec += opts.Retry.backoff(attempt - 1)
		}
		o.simSec += opts.Mount.Read(c.Size).NetworkSeconds
		// A cold server page cache (multi-tenant eviction) surcharges the
		// read; warm extents and plain media add nothing.
		if pm, ok := med.(ReadPenaltyMedium); ok {
			o.simSec += pm.ReadPenaltySeconds(c.Offset, c.Size)
		}
		if _, err := med.ReadAt(buf, c.Offset); err != nil {
			lastErr = err
			if errors.Is(err, ErrTransient) {
				continue
			}
			o.err = err
			return o
		}
		if Digest(buf) != c.CRC {
			lastErr = fmt.Errorf("%w: chunk digest mismatch", ErrCorrupt)
			continue
		}
		o.raw = buf
		return o
	}
	o.err = fmt.Errorf("giving up after %d attempts: %w", opts.Retry.MaxAttempts, lastErr)
	return o
}

// decodeChunk decompresses verified chunk bytes and checks the shape
// against the manifest, updating o in place.
func decodeChunk(o *chunkOutcome, f *FieldInfo, blob []byte) {
	data, dims, err := container.Unpack(blob, container.Options{Parallelism: 1})
	if err != nil {
		// A payload that passes its digest but fails to decode will not
		// change on re-read.
		o.err = err
		return
	}
	if len(data) != f.Elems() || !dimsEqual(dims, f.Dims) {
		o.err = fmt.Errorf("%w: chunk shape %v disagrees with manifest %v", ErrCorrupt, dims, f.Dims)
		return
	}
	o.data = data
}

// restoreChunk fetches, verifies, and decompresses one data chunk. keepRaw
// retains the verified compressed bytes so a later reconstruction pass can
// use the chunk as a stripe source without re-reading it.
func restoreChunk(med Medium, m *Manifest, idx int, opts RestoreOptions, keepRaw bool) chunkOutcome {
	c := &m.Chunks[idx]
	o := readVerified(med, c, opts)
	if o.err != nil {
		return o
	}
	decodeChunk(&o, &m.Fields[c.Field], o.raw)
	if !keepRaw || o.err != nil {
		o.raw = nil
	}
	return o
}

func dimsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// VerifyReport summarizes a Verify pass.
type VerifyReport struct {
	Chunks   int
	ChunksOK int
	Failed   []ChunkError
	// ParityChunks/ParityOK/ParityFailed cover the Reed–Solomon parity
	// shards of format v2 sets (all zero/nil on v1 sets). Parity shards are
	// digest-checked only; they hold raw stripe bytes, not payloads, so
	// deep mode does not try to decompress them.
	ParityChunks int
	ParityOK     int
	ParityFailed []ChunkError
	// Reconstructable is true when every failed data chunk could still be
	// rebuilt from the set's surviving parity: per field stripe, failed
	// data chunks + failed parity shards <= ParityRanks. A fully clean set
	// is trivially reconstructable. On delta sets the unit is the owning
	// rank's local region.
	Reconstructable bool
	// RefChunks/RefsOK cover a delta set's base references; they are only
	// checked when the base chain is provided (VerifyOptions.Bases).
	RefChunks int
	RefsOK    int
	// BaseErr is non-nil when a delta set's base chain could not be
	// resolved — missing, pin mismatch, or corrupt (an ErrBase kind) — in
	// which case references went unchecked. nil on full sets.
	BaseErr error
}

// VerifyOptions tunes VerifySet.
type VerifyOptions struct {
	// Deep decompresses every stored payload besides digest-checking it.
	Deep bool
	// Workers fans the chunk scans (0 = GOMAXPROCS).
	Workers int
	// Bases is the base chain of a delta set, immediate base first. When
	// provided, every base reference is resolved and digest-checked; when
	// absent on a delta set, Report.BaseErr reports the unchecked chain.
	Bases []Medium
}

// Verify checks a checkpoint set without materializing it: manifest digest
// and structure always, then every chunk's CRC32C; with deep set it also
// decompresses each data chunk to prove the payloads decode. On format v2
// sets the parity shards are digest-scanned too and the report says
// whether any damage found is still within the erasure budget. Workers fan
// the chunk scans (0 = GOMAXPROCS). Delta sets (format v3) get their
// stored blobs scanned; pass the base chain via VerifySet to also check
// base references.
func Verify(med Medium, deep bool, workers int) (*VerifyReport, error) {
	return VerifySet(med, VerifyOptions{Deep: deep, Workers: workers})
}

// VerifySet is Verify with options; on delta sets it can additionally
// resolve the base chain and digest-check every base reference.
func VerifySet(med Medium, opts VerifyOptions) (*VerifyReport, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	m, err := ReadManifest(med)
	if err != nil {
		return nil, err
	}
	if m.IsDelta() {
		return verifyDelta(med, m, opts, workers)
	}
	nData := m.NumChunks()
	n := nData + m.NumParityChunks()
	errs := make([]error, n)
	var wg sync.WaitGroup
	next := make(chan int)
	go func() {
		defer close(next)
		for i := 0; i < n; i++ {
			next <- i
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				var c *ChunkInfo
				if i < nData {
					c = &m.Chunks[i]
				} else {
					c = &m.ParityChunks[i-nData]
				}
				buf := make([]byte, c.Size)
				if _, err := med.ReadAt(buf, c.Offset); err != nil {
					errs[i] = err
					continue
				}
				if Digest(buf) != c.CRC {
					errs[i] = fmt.Errorf("%w: chunk digest mismatch", ErrCorrupt)
					continue
				}
				if opts.Deep && i < nData {
					if _, _, err := container.Unpack(buf, container.Options{Parallelism: 1}); err != nil {
						errs[i] = err
					}
				}
			}
		}()
	}
	wg.Wait()
	rep := &VerifyReport{Chunks: nData, ParityChunks: n - nData}
	nFields := len(m.Fields)
	// lost[field] counts failed stripe members (data chunks and parity
	// shards alike — both consume the erasure budget).
	lost := make([]int, nFields)
	for i, err := range errs[:nData] {
		if err == nil {
			rep.ChunksOK++
		} else {
			rep.Failed = append(rep.Failed, ChunkError{Rank: i / nFields, Field: i % nFields, Err: err})
			lost[i%nFields]++
		}
	}
	for i, err := range errs[nData:] {
		c := &m.ParityChunks[i]
		if err == nil {
			rep.ParityOK++
		} else {
			rep.ParityFailed = append(rep.ParityFailed, ChunkError{Rank: c.Rank, Field: c.Field, Err: err})
			lost[c.Field]++
		}
	}
	rep.Reconstructable = true
	for _, l := range lost {
		if l > m.ParityRanks {
			rep.Reconstructable = false
		}
	}
	if len(rep.Failed) > 0 && m.ParityRanks == 0 {
		rep.Reconstructable = false
	}
	return rep, nil
}
