package ckpt

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"lcpio/internal/container"
	"lcpio/internal/nfs"
	"lcpio/internal/obs"
)

// RestoreOptions tunes Restore.
type RestoreOptions struct {
	// Workers is the number of parallel chunk readers/decompressors
	// (0 = GOMAXPROCS).
	Workers int
	// Retry caps per-chunk re-reads of transient faults and digest
	// mismatches.
	Retry RetryPolicy
	// AllowPartial turns unrecoverable chunks into a partial restore —
	// the affected ranks come back with nil Data and are reported in
	// Report.Failed / Report.MissingRanks — instead of failing the whole
	// restore.
	AllowPartial bool
	// Mount is the simulated NFS read path (zero value = DefaultMount).
	Mount nfs.Mount
}

func (o RestoreOptions) normalized() RestoreOptions {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	o.Retry = o.Retry.normalized()
	return o
}

// ChunkError reports one chunk that could not be recovered.
type ChunkError struct {
	Rank, Field int
	Err         error
}

func (c ChunkError) Error() string {
	return fmt.Sprintf("chunk (rank %d, field %d): %v", c.Rank, c.Field, c.Err)
}

// RestoreReport summarizes what Restore did and what it could not recover.
type RestoreReport struct {
	ChunksOK int
	// ChunksReread counts chunks that needed more than one read — the
	// digest caught a corrupted first read and only that chunk was
	// fetched again.
	ChunksReread int
	// Retries counts read attempts beyond the first across all chunks.
	Retries int64
	// Failed lists every chunk that stayed unrecoverable after retries,
	// sorted by (rank, field).
	Failed []ChunkError
	// MissingRanks lists ranks for which no field could be recovered.
	MissingRanks []int
	// SimReadSeconds is the simulated NFS busy time of all chunk and
	// manifest fetches, including re-reads and backoff.
	SimReadSeconds float64
}

// RestoredField is one field with per-rank arrays; a rank that could not be
// recovered has a nil Data entry.
type RestoredField struct {
	Name       string
	Dims       []int
	ErrorBound float64
	Data       [][]float32
}

// Restored is the output of Restore.
type Restored struct {
	Manifest *Manifest
	Fields   []RestoredField
	Report   RestoreReport
}

// Field returns the restored field with the given name, or nil.
func (r *Restored) Field(name string) *RestoredField {
	for i := range r.Fields {
		if r.Fields[i].Name == name {
			return &r.Fields[i]
		}
	}
	return nil
}

type chunkOutcome struct {
	data    []float32
	err     error
	reread  bool
	retries int64
	simSec  float64
}

// Restore reads a checkpoint set back: it decodes the manifest, fans chunks
// across Workers parallel readers, verifies every chunk's CRC32C digest
// before decompression, and re-reads only the chunks whose digests fail —
// transient corruption costs one extra fetch of that chunk, nothing else.
// Unrecoverable chunks fail the restore unless AllowPartial is set, in
// which case the affected ranks return nil Data and the report lists every
// failure and fully missing rank explicitly.
func Restore(med Medium, opts RestoreOptions) (*Restored, error) {
	opts = opts.normalized()
	span := obs.Start("ckpt.restore")
	defer span.End()

	// The footer/manifest fetch rides the same faulty medium as chunks, so
	// it gets the same retry budget: transient read errors and corrupted
	// first reads (digest or structure check fails) are re-read.
	var m *Manifest
	var err error
	var manifestRetries int64
	for attempt := 1; ; attempt++ {
		m, err = ReadManifest(med)
		if err == nil {
			break
		}
		if attempt >= opts.Retry.MaxAttempts ||
			!(errors.Is(err, ErrTransient) || errors.Is(err, ErrCorrupt)) {
			return nil, err
		}
		manifestRetries++
	}
	n := m.NumChunks()
	nFields := len(m.Fields)
	outcomes := make([]chunkOutcome, n)

	var wg sync.WaitGroup
	next := make(chan int)
	go func() {
		defer close(next)
		for i := 0; i < n; i++ {
			next <- i
		}
	}()
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				outcomes[i] = restoreChunk(med, m, i, opts)
			}
		}()
	}
	wg.Wait()

	out := &Restored{Manifest: m, Fields: make([]RestoredField, nFields)}
	rep := &out.Report
	// The manifest fetch itself rides the simulated read path.
	rep.Retries = manifestRetries
	rep.SimReadSeconds = float64(1+manifestRetries) *
		opts.Mount.Read(int64(len(m.encode()))+footerLen).NetworkSeconds
	for fi, f := range m.Fields {
		out.Fields[fi] = RestoredField{
			Name:       f.Name,
			Dims:       append([]int(nil), f.Dims...),
			ErrorBound: f.ErrorBound,
			Data:       make([][]float32, m.Ranks),
		}
	}
	rankOK := make([]bool, m.Ranks)
	for i := range outcomes {
		o := &outcomes[i]
		rank, field := i/nFields, i%nFields
		rep.SimReadSeconds += o.simSec
		rep.Retries += o.retries
		if o.reread {
			rep.ChunksReread++
			obs.Add("lcpio_ckpt_chunks_reread_total", 1)
		}
		if o.err != nil {
			rep.Failed = append(rep.Failed, ChunkError{Rank: rank, Field: field, Err: o.err})
			continue
		}
		rep.ChunksOK++
		rankOK[rank] = true
		out.Fields[field].Data[rank] = o.data
	}
	sort.Slice(rep.Failed, func(a, b int) bool {
		fa, fb := rep.Failed[a], rep.Failed[b]
		if fa.Rank != fb.Rank {
			return fa.Rank < fb.Rank
		}
		return fa.Field < fb.Field
	})
	for r, ok := range rankOK {
		if !ok {
			rep.MissingRanks = append(rep.MissingRanks, r)
		}
	}
	if len(rep.Failed) > 0 && !opts.AllowPartial {
		return nil, fmt.Errorf("ckpt: %d of %d chunks unrecoverable (first: %v)",
			len(rep.Failed), n, rep.Failed[0])
	}
	return out, nil
}

// restoreChunk fetches, verifies, and decompresses one chunk, re-reading on
// transient read errors and digest mismatches with capped backoff.
func restoreChunk(med Medium, m *Manifest, idx int, opts RestoreOptions) chunkOutcome {
	c := &m.Chunks[idx]
	f := &m.Fields[c.Field]
	var o chunkOutcome
	buf := make([]byte, c.Size)
	var lastErr error
	for attempt := 1; attempt <= opts.Retry.MaxAttempts; attempt++ {
		if attempt > 1 {
			o.retries++
			o.reread = true
			o.simSec += opts.Retry.backoff(attempt - 1)
		}
		o.simSec += opts.Mount.Read(c.Size).NetworkSeconds
		if _, err := med.ReadAt(buf, c.Offset); err != nil {
			lastErr = err
			if errors.Is(err, ErrTransient) {
				continue
			}
			o.err = err
			return o
		}
		if Digest(buf) != c.CRC {
			lastErr = fmt.Errorf("%w: chunk digest mismatch", ErrCorrupt)
			continue
		}
		data, dims, err := container.Unpack(buf, container.Options{Parallelism: 1})
		if err != nil {
			// A payload that passes its digest but fails to decode will
			// not change on re-read.
			o.err = err
			return o
		}
		if len(data) != f.Elems() || !dimsEqual(dims, f.Dims) {
			o.err = fmt.Errorf("%w: chunk shape %v disagrees with manifest %v", ErrCorrupt, dims, f.Dims)
			return o
		}
		o.data = data
		return o
	}
	o.err = fmt.Errorf("giving up after %d attempts: %w", opts.Retry.MaxAttempts, lastErr)
	return o
}

func dimsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// VerifyReport summarizes a Verify pass.
type VerifyReport struct {
	Chunks   int
	ChunksOK int
	Failed   []ChunkError
}

// Verify checks a checkpoint set without materializing it: manifest digest
// and structure always, then every chunk's CRC32C; with deep set it also
// decompresses each chunk to prove the payloads decode. Workers fan the
// chunk scans (0 = GOMAXPROCS).
func Verify(med Medium, deep bool, workers int) (*VerifyReport, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	m, err := ReadManifest(med)
	if err != nil {
		return nil, err
	}
	n := m.NumChunks()
	errs := make([]error, n)
	var wg sync.WaitGroup
	next := make(chan int)
	go func() {
		defer close(next)
		for i := 0; i < n; i++ {
			next <- i
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				c := &m.Chunks[i]
				buf := make([]byte, c.Size)
				if _, err := med.ReadAt(buf, c.Offset); err != nil {
					errs[i] = err
					continue
				}
				if Digest(buf) != c.CRC {
					errs[i] = fmt.Errorf("%w: chunk digest mismatch", ErrCorrupt)
					continue
				}
				if deep {
					if _, _, err := container.Unpack(buf, container.Options{Parallelism: 1}); err != nil {
						errs[i] = err
					}
				}
			}
		}()
	}
	wg.Wait()
	rep := &VerifyReport{Chunks: n}
	nFields := len(m.Fields)
	for i, err := range errs {
		if err == nil {
			rep.ChunksOK++
		} else {
			rep.Failed = append(rep.Failed, ChunkError{Rank: i / nFields, Field: i % nFields, Err: err})
		}
	}
	return rep, nil
}
