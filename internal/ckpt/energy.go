package ckpt

import (
	"lcpio/internal/dvfs"
	"lcpio/internal/machine"
	"lcpio/internal/nfs"
	"lcpio/internal/phases"
)

// CampaignOptions turns one measured WriteResult into a multi-iteration
// checkpoint (or checkpoint/restart) campaign for the phase planner.
type CampaignOptions struct {
	// Iterations is the number of checkpoint cycles (0 = 1).
	Iterations int
	// ComputeSeconds is the application compute time between checkpoints
	// at base clock.
	ComputeSeconds float64
	// Chip the campaign runs on (nil = Broadwell, the paper's primary).
	Chip *dvfs.Chip
	// Mount is the simulated NFS path the campaign's transfers ride
	// (zero value = DefaultMount).
	Mount nfs.Mount
	// WithRestore appends read + decompress phases per iteration, the
	// checkpoint/restart shape of Moran et al.
	WithRestore bool
}

func (o CampaignOptions) normalized() CampaignOptions {
	if o.Iterations <= 0 {
		o.Iterations = 1
	}
	if o.Chip == nil {
		o.Chip = dvfs.Broadwell()
	}
	return o
}

// CampaignPlan builds a phases.Plan from this write's measured splits: the
// compression workload is parameterized by the set's codec, payload-weighted
// relative error bound, and *measured* ratio; the transit workloads replay
// the set's full on-medium size (payload + manifest framing) through the
// simulated mount. With WithRestore each iteration also reads the set back
// and decompresses it.
func (r *WriteResult) CampaignPlan(opts CampaignOptions) (phases.Plan, error) {
	opts = opts.normalized()
	m := r.Manifest
	compress, err := machine.CompressionWorkloadWithRatio(
		m.Codec, r.RawBytes, r.MeanRelEB, r.Ratio(), opts.Chip)
	if err != nil {
		return phases.Plan{}, err
	}
	write := machine.TransitWorkload(opts.Mount.Write(r.FileBytes), opts.Chip)
	if !opts.WithRestore {
		return phases.CheckpointCampaign(opts.Iterations, opts.ComputeSeconds, compress, write), nil
	}
	decompress, err := machine.DecompressionWorkload(
		m.Codec, r.RawBytes, r.MeanRelEB, r.Ratio(), opts.Chip)
	if err != nil {
		return phases.Plan{}, err
	}
	read := machine.TransitWorkload(opts.Mount.Read(r.FileBytes), opts.Chip)
	return phases.CheckpointRestartCampaign(
		opts.Iterations, opts.ComputeSeconds, compress, write, read, decompress), nil
}

// EnergyReport executes the campaign at base clock and under the paper's
// Eqn 3 rule (compression at 0.875× base, writing at 0.85×) and returns the
// comparison — the "what does tuned checkpointing save" answer for this set.
func (r *WriteResult) EnergyReport(opts CampaignOptions) (phases.Comparison, error) {
	opts = opts.normalized()
	pl, err := r.CampaignPlan(opts)
	if err != nil {
		return phases.Comparison{}, err
	}
	node := machine.NewNode(opts.Chip, 1)
	return phases.Compare(pl, phases.PaperRule(), node)
}
