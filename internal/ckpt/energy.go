package ckpt

import (
	"fmt"
	"math"

	"lcpio/internal/dvfs"
	"lcpio/internal/machine"
	"lcpio/internal/nfs"
	"lcpio/internal/phases"
)

// CampaignOptions turns one measured WriteResult into a multi-iteration
// checkpoint (or checkpoint/restart) campaign for the phase planner.
type CampaignOptions struct {
	// Iterations is the number of checkpoint cycles (0 = 1).
	Iterations int
	// ComputeSeconds is the application compute time between checkpoints
	// at base clock.
	ComputeSeconds float64
	// Chip the campaign runs on (nil = Broadwell, the paper's primary).
	Chip *dvfs.Chip
	// Mount is the simulated NFS path the campaign's transfers ride
	// (zero value = DefaultMount).
	Mount nfs.Mount
	// WithRestore appends read + decompress phases per iteration, the
	// checkpoint/restart shape of Moran et al.
	WithRestore bool
}

func (o CampaignOptions) normalized() CampaignOptions {
	if o.Iterations <= 0 {
		o.Iterations = 1
	}
	if o.Chip == nil {
		o.Chip = dvfs.Broadwell()
	}
	return o
}

// CampaignPlan builds a phases.Plan from this write's measured splits: the
// compression workload is parameterized by the set's codec, payload-weighted
// relative error bound, and *measured* ratio; the transit workloads replay
// the set's full on-medium size (payload + manifest framing) through the
// simulated mount. On a parity set (ParityRanks > 0) the write leg is split:
// the payload write covers FileBytes minus the parity shards, and a separate
// Writing-class "checkpoint-parity-write" phase carries the parity bytes, so
// the redundancy premium is itemized per iteration and tuned to 0.85× base
// like any other NFS transfer (Eqn 3). With WithRestore each iteration also
// reads the payload back and decompresses it — a clean restart never reads
// parity.
// A delta write (format v3) maps to the DeltaCheckpointCampaign shape
// instead: a dedup pass over the full raw state, compression of only the
// locally-stored raw bytes at their measured ratio, and the (much smaller)
// delta-file write. WithRestore is not supported for delta sets — a delta
// restart also replays its base chain, which this result does not measure.
func (r *WriteResult) CampaignPlan(opts CampaignOptions) (phases.Plan, error) {
	opts = opts.normalized()
	m := r.Manifest
	if m.IsDelta() {
		if opts.WithRestore {
			return phases.Plan{}, fmt.Errorf("ckpt: WithRestore campaign not supported for delta sets")
		}
		dedupW, err := machine.DedupWorkload(r.RawBytes, opts.Chip)
		if err != nil {
			return phases.Plan{}, err
		}
		compress, err := machine.CompressionWorkloadWithRatio(
			m.Codec, r.LocalRawBytes, r.MeanRelEB, r.localRatio(), opts.Chip)
		if err != nil {
			return phases.Plan{}, err
		}
		write := machine.TransitWorkload(opts.Mount.Write(r.FileBytes), opts.Chip)
		return phases.DeltaCheckpointCampaign(
			opts.Iterations, opts.ComputeSeconds, dedupW, compress, write), nil
	}
	compress, err := machine.CompressionWorkloadWithRatio(
		m.Codec, r.RawBytes, r.MeanRelEB, r.Ratio(), opts.Chip)
	if err != nil {
		return phases.Plan{}, err
	}
	payloadFile := r.FileBytes - r.ParityBytes
	write := machine.TransitWorkload(opts.Mount.Write(payloadFile), opts.Chip)
	var parityWrite machine.Workload
	if r.ParityBytes > 0 {
		parityWrite = machine.TransitWorkload(opts.Mount.Write(r.ParityBytes), opts.Chip)
	}
	if !opts.WithRestore {
		if r.ParityBytes > 0 {
			return phases.CheckpointCampaignWithParity(
				opts.Iterations, opts.ComputeSeconds, compress, write, parityWrite), nil
		}
		return phases.CheckpointCampaign(opts.Iterations, opts.ComputeSeconds, compress, write), nil
	}
	decompress, err := machine.DecompressionWorkload(
		m.Codec, r.RawBytes, r.MeanRelEB, r.Ratio(), opts.Chip)
	if err != nil {
		return phases.Plan{}, err
	}
	read := machine.TransitWorkload(opts.Mount.Read(payloadFile), opts.Chip)
	if r.ParityBytes > 0 {
		return phases.CheckpointRestartCampaignWithParity(
			opts.Iterations, opts.ComputeSeconds, compress, write, parityWrite, read, decompress), nil
	}
	return phases.CheckpointRestartCampaign(
		opts.Iterations, opts.ComputeSeconds, compress, write, read, decompress), nil
}

// EnergyReport executes the campaign at base clock and under the paper's
// Eqn 3 rule (compression at 0.875× base, writing at 0.85×) and returns the
// comparison — the "what does tuned checkpointing save" answer for this set.
func (r *WriteResult) EnergyReport(opts CampaignOptions) (phases.Comparison, error) {
	opts = opts.normalized()
	pl, err := r.CampaignPlan(opts)
	if err != nil {
		return phases.Comparison{}, err
	}
	node := machine.NewNode(opts.Chip, 1)
	return phases.Compare(pl, phases.PaperRule(), node)
}

// ParityEnergy is the redundancy economics of one measured parity write:
// what the erasure-coding leg costs per checkpoint, what recovering a lost
// rank costs with parity (reconstruction) versus without (redump), and the
// per-checkpoint rank-loss probability above which carrying parity is the
// cheaper policy. All legs are costed at the paper's Eqn 3 clocks —
// transfers at 0.85× base, (re)compression at 0.875×.
type ParityEnergy struct {
	ParityRanks int
	ParityBytes int64
	// ParityJoules/ParitySeconds is the per-checkpoint premium: writing the
	// parity shards at the tuned I/O clock.
	ParityJoules  float64
	ParitySeconds float64
	// ReconstructJoules is the incremental cost of rebuilding a lost rank
	// during an already-running restore: fetching the parity shards over the
	// same mount (the GF arithmetic itself is bandwidth-bound and costed as
	// part of that transit).
	ReconstructJoules float64
	// RedumpJoules is what recovering without parity costs: recompress the
	// lost rank's raw share and rewrite its file share.
	RedumpJoules float64
	// BreakEvenLossProb is the per-checkpoint probability of losing a rank
	// at which the parity premium equals the expected redump saving:
	// ParityJoules = p · (RedumpJoules − ReconstructJoules). Below it,
	// plain v1 dumps are cheaper; above it, parity pays for itself.
	// +Inf when reconstruction is not cheaper than redumping.
	BreakEvenLossProb float64
}

// ParityEnergy prices this write's erasure-coding layer under Eqn 3. It is
// only meaningful for parity sets; calling it on a v1 result returns a zero
// report with BreakEvenLossProb = +Inf (no premium, nothing to break even).
func (r *WriteResult) ParityEnergy(opts CampaignOptions) (ParityEnergy, error) {
	opts = opts.normalized()
	pe := ParityEnergy{ParityRanks: r.ParityRanks, ParityBytes: r.ParityBytes}
	if r.ParityBytes <= 0 {
		pe.BreakEvenLossProb = math.Inf(1)
		return pe, nil
	}
	chip := opts.Chip
	node := machine.NewNode(chip, 1)
	rule := phases.PaperRule()
	fIO := chip.ClampFreq(rule.WritingFraction * chip.BaseGHz)
	fComp := chip.ClampFreq(rule.CompressionFraction * chip.BaseGHz)

	s := node.RunClean(machine.TransitWorkload(opts.Mount.Write(r.ParityBytes), chip), fIO)
	pe.ParityJoules, pe.ParitySeconds = s.Joules, s.Seconds

	s = node.RunClean(machine.TransitWorkload(opts.Mount.Read(r.ParityBytes), chip), fIO)
	pe.ReconstructJoules = s.Joules

	ranks := int64(r.Manifest.Ranks)
	recompress, err := machine.CompressionWorkloadWithRatio(
		r.Manifest.Codec, r.RawBytes/ranks, r.MeanRelEB, r.Ratio(), chip)
	if err != nil {
		return ParityEnergy{}, err
	}
	pe.RedumpJoules = node.RunClean(recompress, fComp).Joules +
		node.RunClean(machine.TransitWorkload(
			opts.Mount.Write((r.FileBytes-r.ParityBytes)/ranks), chip), fIO).Joules

	if saving := pe.RedumpJoules - pe.ReconstructJoules; saving > 0 {
		pe.BreakEvenLossProb = pe.ParityJoules / saving
	} else {
		pe.BreakEvenLossProb = math.Inf(1)
	}
	return pe, nil
}

// DeltaEnergy is the incremental-checkpoint economics of one measured delta
// write against its measured full-dump baseline: what the dedup pass costs
// per checkpoint, what the delta actually cost (hash + compress churn +
// write the small file), what the equivalent full dump costs, and the churn
// rate at which the two meet. All legs are costed at the paper's Eqn 3
// clocks — transfers at 0.85× base, CPU passes (hashing, compression) at
// 0.875×.
type DeltaEnergy struct {
	// ChurnRate is the measured fraction of raw bytes this delta stored as
	// new blobs (LocalRawBytes / RawBytes).
	ChurnRate float64
	// DedupRatio is the fraction of raw bytes satisfied without new payload.
	DedupRatio float64
	// HashJoules is the per-checkpoint dedup pass: gear-chunking and
	// digesting the full raw state at the tuned compression clock.
	HashJoules float64
	// DeltaJoules prices this delta checkpoint end to end: the dedup pass,
	// compressing the locally stored raw bytes at their measured ratio, and
	// writing the delta file (manifest framing and parity included).
	DeltaJoules float64
	// FullJoules prices the measured full-dump alternative: compressing the
	// whole raw state at its measured ratio and writing the full file.
	FullJoules float64
	// NetSavedJoules = FullJoules − DeltaJoules: what this delta saved per
	// checkpoint. Negative when hashing cost more than the avoided writes.
	NetSavedJoules float64
	// BreakEvenChurn is the churn rate c* at which a delta checkpoint costs
	// exactly as much as a full dump, modelling delta cost as
	// HashJoules + framing + c·(full compress + write energy). Below c*
	// delta checkpointing wins; 0 if hashing alone already exceeds a full
	// dump, +Inf if a delta is cheaper at any churn.
	BreakEvenChurn float64
}

// DeltaEnergy prices this delta write under Eqn 3 against full, the
// measured full-dump result it replaces (typically the chain's base). It is
// only meaningful for delta results; calling it on a full-dump result
// returns an error, as does a baseline with mismatched raw size.
func (r *WriteResult) DeltaEnergy(full *WriteResult, opts CampaignOptions) (DeltaEnergy, error) {
	opts = opts.normalized()
	if !r.Manifest.IsDelta() {
		return DeltaEnergy{}, fmt.Errorf("ckpt: DeltaEnergy on a non-delta result")
	}
	if full == nil || full.Manifest.IsDelta() {
		return DeltaEnergy{}, fmt.Errorf("ckpt: DeltaEnergy baseline must be a full-dump result")
	}
	if full.RawBytes != r.RawBytes {
		return DeltaEnergy{}, fmt.Errorf("ckpt: baseline raw size %d != delta raw size %d",
			full.RawBytes, r.RawBytes)
	}
	chip := opts.Chip
	node := machine.NewNode(chip, 1)
	rule := phases.PaperRule()
	fIO := chip.ClampFreq(rule.WritingFraction * chip.BaseGHz)
	fComp := chip.ClampFreq(rule.CompressionFraction * chip.BaseGHz)

	de := DeltaEnergy{
		ChurnRate:  float64(r.LocalRawBytes) / float64(r.RawBytes),
		DedupRatio: r.DedupRatio(),
	}

	dedupW, err := machine.DedupWorkload(r.RawBytes, chip)
	if err != nil {
		return DeltaEnergy{}, err
	}
	de.HashJoules = node.RunClean(dedupW, fComp).Joules

	de.DeltaJoules = de.HashJoules +
		node.RunClean(machine.TransitWorkload(opts.Mount.Write(r.FileBytes), chip), fIO).Joules
	if r.LocalRawBytes > 0 {
		cw, err := machine.CompressionWorkloadWithRatio(
			r.Manifest.Codec, r.LocalRawBytes, r.MeanRelEB, r.localRatio(), chip)
		if err != nil {
			return DeltaEnergy{}, err
		}
		de.DeltaJoules += node.RunClean(cw, fComp).Joules
	}

	fullCompress, err := machine.CompressionWorkloadWithRatio(
		full.Manifest.Codec, full.RawBytes, full.MeanRelEB, full.Ratio(), chip)
	if err != nil {
		return DeltaEnergy{}, err
	}
	compressFullJ := node.RunClean(fullCompress, fComp).Joules
	writeFullJ := node.RunClean(machine.TransitWorkload(opts.Mount.Write(full.FileBytes), chip), fIO).Joules
	de.FullJoules = compressFullJ + writeFullJ
	de.NetSavedJoules = de.FullJoules - de.DeltaJoules

	// Break-even: a delta at churn c costs roughly the fixed hash pass plus
	// the manifest framing write plus c's share of the full compress+write
	// energy (payload scales ~linearly with churn at fixed data hardness).
	framingJ := node.RunClean(machine.TransitWorkload(
		opts.Mount.Write(r.FileBytes-r.PayloadBytes-r.ParityBytes), chip), fIO).Joules
	switch margin := de.FullJoules - de.HashJoules - framingJ; {
	case margin <= 0:
		de.BreakEvenChurn = 0
	case compressFullJ+writeFullJ <= 0:
		de.BreakEvenChurn = math.Inf(1)
	default:
		de.BreakEvenChurn = margin / (compressFullJ + writeFullJ)
	}
	return de, nil
}
