// Package ckpt is the checkpoint/restart store: it packages many fields
// across many simulated ranks into a single versioned checkpoint set — a
// wire-format manifest (fields, shapes, codec, error bounds, per-chunk
// CRC32C digests, per-rank offsets) over internal/container payloads — and
// restores it with digest verification, bounded re-reads of corrupted
// chunks, and explicit partial-restore reporting when a rank is lost.
//
// Set layout on the medium:
//
//	header:  magic, version                                (8 bytes)
//	payload: one container blob per (rank, field) chunk, rank-major,
//	         written in logical order by the pipelined scheduler
//	parity:  (format v2) m Reed–Solomon shards per field stripe,
//	         field-major, each digest-listed in the manifest
//	manifest: encoded Manifest (see below)
//	footer:  manifest offset, length, CRC32C, magic        (24 bytes)
//
// The writer overlaps parallel compression with draining completed chunks
// to the simulated NFS writer (see write.go); because chunks are committed
// in logical order, offsets — and therefore the manifest and the entire
// file — are byte-identical at any worker count.
package ckpt

import (
	"errors"
	"fmt"
	"hash/crc32"

	"lcpio/internal/ec"
	"lcpio/internal/wire"
)

const (
	magic     = 0x4C435054 // "LCPT"
	version   = 1
	version2  = 2 // v1 + erasure-coded parity ranks per field stripe
	headerLen = 8
	footerLen = 24

	// maxParityRanks caps the per-stripe parity count; Reed–Solomon over
	// GF(2^8) additionally needs Ranks+ParityRanks <= ec.MaxShards.
	maxParityRanks = 16

	// Plausibility caps enforced before any count-driven allocation, so a
	// forged manifest cannot demand giant slices (the same discipline as
	// the sz/zfp/container decoders).
	maxRanks    = 1 << 16
	maxFields   = 1 << 12
	maxChunks   = 1 << 22
	maxNameLen  = 256
	maxMetaLen  = 4096
	maxCodecLen = 64
	maxDims     = 8
	maxElems    = 1 << 34
)

// ErrCorrupt is returned for malformed checkpoint sets.
var ErrCorrupt = errors.New("ckpt: corrupt checkpoint set")

// castagnoli is the CRC32C table used for every digest in the format.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Digest returns the CRC32C of b — the per-chunk digest stored in the
// manifest.
func Digest(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

// FieldInfo describes one field of the set; every rank holds an array of
// the same shape and bound.
type FieldInfo struct {
	Name string
	// Dims is the per-rank shape, slowest dimension first.
	Dims []int
	// ErrorBound is the absolute error bound the payload was compressed
	// under.
	ErrorBound float64
}

// Elems returns the per-rank element count.
func (f FieldInfo) Elems() int {
	n := 1
	for _, d := range f.Dims {
		n *= d
	}
	return n
}

// ChunkInfo locates and authenticates one chunk: the container payload of
// one (rank, field) pair.
type ChunkInfo struct {
	Rank, Field int
	Offset      int64
	Size        int64
	CRC         uint32
}

// Manifest is the decoded index of a checkpoint set.
type Manifest struct {
	SetName string
	// Meta is free-form provenance (the CLI stores the synthetic-data
	// recipe here so restore can check error bounds against regenerated
	// originals).
	Meta   string
	Codec  string
	Ranks  int
	Fields []FieldInfo
	// Chunks holds Ranks×len(Fields) entries in rank-major order.
	Chunks []ChunkInfo
	// ParityRanks is the number of Reed–Solomon parity shards appended to
	// each field's rank stripe (format v2; 0 in v1 sets). Any <= ParityRanks
	// lost or corrupt data chunks of a field can be reconstructed.
	ParityRanks int
	// ParityChunks holds len(Fields)×ParityRanks entries, field-major:
	// entry field*ParityRanks+j authenticates parity shard j of that
	// field's stripe. Parity entries reuse ChunkInfo with Rank = Ranks+j
	// (a virtual parity rank); their Size is the stripe length — the
	// largest data chunk of the field, to which shorter chunks are
	// zero-padded during encode.
	ParityChunks []ChunkInfo
}

// NumChunks returns the data chunk count, Ranks × fields.
func (m *Manifest) NumChunks() int { return m.Ranks * len(m.Fields) }

// NumParityChunks returns the parity chunk count, fields × ParityRanks.
func (m *Manifest) NumParityChunks() int { return len(m.Fields) * m.ParityRanks }

// Chunk returns the entry for (rank, field).
func (m *Manifest) Chunk(rank, field int) *ChunkInfo {
	return &m.Chunks[rank*len(m.Fields)+field]
}

// ParityChunk returns the entry for parity shard j of the field's stripe.
func (m *Manifest) ParityChunk(field, j int) *ChunkInfo {
	return &m.ParityChunks[field*m.ParityRanks+j]
}

// ParityBytes is the total parity shard size on the medium.
func (m *Manifest) ParityBytes() int64 {
	var n int64
	for _, c := range m.ParityChunks {
		n += c.Size
	}
	return n
}

// formatVersion is the wire version this manifest encodes as.
func (m *Manifest) formatVersion() uint32 {
	if m.ParityRanks > 0 {
		return version2
	}
	return version
}

// RawBytes is the uncompressed payload size the set represents.
func (m *Manifest) RawBytes() int64 {
	var n int64
	for _, f := range m.Fields {
		n += int64(f.Elems()) * 4
	}
	return n * int64(m.Ranks)
}

// PayloadBytes is the total compressed chunk size.
func (m *Manifest) PayloadBytes() int64 {
	var n int64
	for _, c := range m.Chunks {
		n += c.Size
	}
	return n
}

func appendString(b []byte, s string) []byte {
	b = wire.AppendUint32(b, uint32(len(s)))
	return append(b, s...)
}

func readString(rd *wire.Reader, maxLen int) (string, bool) {
	n := int(rd.Uint32())
	if rd.Err() != nil || n < 0 || n > maxLen {
		return "", false
	}
	return string(rd.Bytes(n)), rd.Err() == nil
}

// encode serializes the manifest. A set with no parity encodes exactly as
// format v1 — adding the erasure-coding layer changed no v1 byte.
func (m *Manifest) encode() []byte {
	var b []byte
	b = wire.AppendUint32(b, magic)
	b = wire.AppendUint32(b, m.formatVersion())
	b = appendString(b, m.SetName)
	b = appendString(b, m.Meta)
	b = appendString(b, m.Codec)
	b = wire.AppendUint32(b, uint32(m.Ranks))
	b = wire.AppendUint32(b, uint32(len(m.Fields)))
	for _, f := range m.Fields {
		b = appendString(b, f.Name)
		b = wire.AppendUint32(b, uint32(len(f.Dims)))
		for _, d := range f.Dims {
			b = wire.AppendUint64(b, uint64(d))
		}
		b = wire.AppendFloat64(b, f.ErrorBound)
	}
	for _, c := range m.Chunks {
		b = wire.AppendUint64(b, uint64(c.Offset))
		b = wire.AppendUint64(b, uint64(c.Size))
		b = wire.AppendUint32(b, c.CRC)
	}
	if m.ParityRanks > 0 {
		b = wire.AppendUint32(b, uint32(m.ParityRanks))
		for _, c := range m.ParityChunks {
			b = wire.AppendUint64(b, uint64(c.Offset))
			b = wire.AppendUint64(b, uint64(c.Size))
			b = wire.AppendUint32(b, c.CRC)
		}
	}
	return b
}

// parseManifest decodes and validates a manifest against the set's file
// size. Every count is capped before allocation and every chunk must lie
// inside the payload region.
func parseManifest(buf []byte, fileSize int64) (*Manifest, error) {
	rd := wire.NewReader(buf, ErrCorrupt)
	if rd.Uint32() != magic {
		return nil, ErrCorrupt
	}
	v := rd.Uint32()
	if v != version && v != version2 {
		if rd.Err() != nil {
			return nil, ErrCorrupt
		}
		return nil, fmt.Errorf("ckpt: unsupported version %d", v)
	}
	var m Manifest
	var ok bool
	if m.SetName, ok = readString(&rd, maxNameLen); !ok {
		return nil, ErrCorrupt
	}
	if m.Meta, ok = readString(&rd, maxMetaLen); !ok {
		return nil, ErrCorrupt
	}
	if m.Codec, ok = readString(&rd, maxCodecLen); !ok {
		return nil, ErrCorrupt
	}
	if m.Codec == "" {
		return nil, ErrCorrupt
	}
	m.Ranks = int(rd.Uint32())
	nFields := int(rd.Uint32())
	if rd.Err() != nil || m.Ranks <= 0 || m.Ranks > maxRanks ||
		nFields <= 0 || nFields > maxFields || m.Ranks*nFields > maxChunks {
		return nil, ErrCorrupt
	}
	m.Fields = make([]FieldInfo, nFields)
	for i := range m.Fields {
		f := &m.Fields[i]
		if f.Name, ok = readString(&rd, maxNameLen); !ok || f.Name == "" {
			return nil, ErrCorrupt
		}
		nd := int(rd.Uint32())
		if rd.Err() != nil || nd <= 0 || nd > maxDims {
			return nil, ErrCorrupt
		}
		f.Dims = make([]int, nd)
		elems := 1
		for j := range f.Dims {
			d := rd.Uint64()
			if d == 0 || d > 1<<40 {
				return nil, ErrCorrupt
			}
			f.Dims[j] = int(d)
			elems *= int(d)
			if elems <= 0 || elems > maxElems {
				return nil, ErrCorrupt
			}
		}
		f.ErrorBound = rd.Float64()
		if rd.Err() != nil || !(f.ErrorBound > 0) {
			return nil, ErrCorrupt
		}
	}
	n := m.Ranks * nFields
	m.Chunks = make([]ChunkInfo, n)
	payloadEnd := fileSize - footerLen
	for i := range m.Chunks {
		c := &m.Chunks[i]
		c.Rank, c.Field = i/nFields, i%nFields
		c.Offset = int64(rd.Uint64())
		c.Size = int64(rd.Uint64())
		c.CRC = rd.Uint32()
		if rd.Err() != nil || c.Offset < headerLen || c.Size < 0 ||
			c.Offset+c.Size > payloadEnd || c.Offset+c.Size < c.Offset {
			return nil, ErrCorrupt
		}
	}
	if v == version2 {
		m.ParityRanks = int(rd.Uint32())
		if rd.Err() != nil || m.ParityRanks < 1 || m.ParityRanks > maxParityRanks ||
			m.Ranks+m.ParityRanks > ec.MaxShards {
			return nil, ErrCorrupt
		}
		m.ParityChunks = make([]ChunkInfo, nFields*m.ParityRanks)
		for i := range m.ParityChunks {
			c := &m.ParityChunks[i]
			c.Field = i / m.ParityRanks
			c.Rank = m.Ranks + i%m.ParityRanks
			c.Offset = int64(rd.Uint64())
			c.Size = int64(rd.Uint64())
			c.CRC = rd.Uint32()
			if rd.Err() != nil || c.Offset < headerLen || c.Size < 0 ||
				c.Offset+c.Size > payloadEnd || c.Offset+c.Size < c.Offset {
				return nil, ErrCorrupt
			}
		}
		// Stripe coherence: every parity shard of a field carries the
		// stripe length — the largest data chunk of that field, to which
		// shorter chunks are zero-padded during encode.
		for fi := 0; fi < nFields; fi++ {
			var shardLen int64
			for r := 0; r < m.Ranks; r++ {
				if s := m.Chunk(r, fi).Size; s > shardLen {
					shardLen = s
				}
			}
			for j := 0; j < m.ParityRanks; j++ {
				if m.ParityChunk(fi, j).Size != shardLen {
					return nil, ErrCorrupt
				}
			}
		}
	}
	if rd.Remaining() != 0 {
		return nil, ErrCorrupt
	}
	return &m, nil
}

// ReadManifest locates the footer on the medium, verifies the manifest's
// own digest, and decodes it.
func ReadManifest(med Medium) (*Manifest, error) {
	size := med.Size()
	if size < headerLen+footerLen {
		return nil, ErrCorrupt
	}
	var foot [footerLen]byte
	if _, err := med.ReadAt(foot[:], size-footerLen); err != nil {
		return nil, fmt.Errorf("ckpt: reading footer: %w", err)
	}
	rd := wire.NewReader(foot[:], ErrCorrupt)
	mOff := int64(rd.Uint64())
	mLen := int64(rd.Uint64())
	mCRC := rd.Uint32()
	if rd.Uint32() != magic || rd.Err() != nil {
		return nil, ErrCorrupt
	}
	if mOff < headerLen || mLen <= 0 || mOff+mLen != size-footerLen {
		return nil, ErrCorrupt
	}
	mb := make([]byte, mLen)
	if _, err := med.ReadAt(mb, mOff); err != nil {
		return nil, fmt.Errorf("ckpt: reading manifest: %w", err)
	}
	if Digest(mb) != mCRC {
		return nil, ErrCorrupt
	}
	return parseManifest(mb, size)
}

// OverheadBytes estimates the framing cost of a checkpoint set beyond its
// compressed payload: header, footer, and a manifest with the given field
// and rank counts (avgNameLen covers SetName/Meta/field names, ndims the
// per-field shape entries). The cluster fleet model uses this so
// contended-ingress traffic reflects manifest + chunk-table overheads, not
// just payload bytes.
func OverheadBytes(fields, ranks, avgNameLen, ndims int) int64 {
	if fields <= 0 || ranks <= 0 {
		return 0
	}
	if avgNameLen <= 0 {
		avgNameLen = 16
	}
	if ndims <= 0 {
		ndims = 3
	}
	manifest := int64(8)                                        // magic+version
	manifest += 3 * int64(4+avgNameLen)                         // set name, meta, codec
	manifest += 8                                               // ranks + nfields
	manifest += int64(fields) * int64(4+avgNameLen+4+8*ndims+8) // field table
	manifest += int64(fields) * int64(ranks) * 20               // chunk table
	return headerLen + footerLen + manifest
}
