// Package ckpt is the checkpoint/restart store: it packages many fields
// across many simulated ranks into a single versioned checkpoint set — a
// wire-format manifest (fields, shapes, codec, error bounds, per-chunk
// CRC32C digests, per-rank offsets) over internal/container payloads — and
// restores it with digest verification, bounded re-reads of corrupted
// chunks, and explicit partial-restore reporting when a rank is lost.
//
// Set layout on the medium:
//
//	header:  magic, version                                (8 bytes)
//	payload: one container blob per (rank, field) chunk, rank-major,
//	         written in logical order by the pipelined scheduler
//	parity:  (format v2) m Reed–Solomon shards per field stripe,
//	         field-major, each digest-listed in the manifest
//	manifest: encoded Manifest (see below)
//	footer:  manifest offset, length, CRC32C, magic        (24 bytes)
//
// The writer overlaps parallel compression with draining completed chunks
// to the simulated NFS writer (see write.go); because chunks are committed
// in logical order, offsets — and therefore the manifest and the entire
// file — are byte-identical at any worker count.
package ckpt

import (
	"errors"
	"fmt"
	"hash/crc32"

	"lcpio/internal/dedup"
	"lcpio/internal/ec"
	"lcpio/internal/wire"
)

const (
	magic     = 0x4C435054 // "LCPT"
	version   = 1
	version2  = 2 // v1 + erasure-coded parity ranks per field stripe
	version3  = 3 // delta set: content-defined chunks dedup'd against a base set
	headerLen = 8
	footerLen = 24

	// maxChainDepth bounds how many delta sets may stack on one full set;
	// restore cost and failure surface grow with the chain, so the format
	// refuses to encode deeper lineages.
	maxChainDepth = 8

	// dedupAlign pins chunk boundaries to whole float32 values.
	dedupAlign = 4

	// DigestWireLen is the on-wire content-digest size (see dedup.Sum).
	DigestWireLen = dedup.DigestLen

	// maxParityRanks caps the per-stripe parity count; Reed–Solomon over
	// GF(2^8) additionally needs Ranks+ParityRanks <= ec.MaxShards.
	maxParityRanks = 16

	// Plausibility caps enforced before any count-driven allocation, so a
	// forged manifest cannot demand giant slices (the same discipline as
	// the sz/zfp/container decoders).
	maxRanks    = 1 << 16
	maxFields   = 1 << 12
	maxChunks   = 1 << 22
	maxNameLen  = 256
	maxMetaLen  = 4096
	maxCodecLen = 64
	maxDims     = 8
	maxElems    = 1 << 34
)

// ErrCorrupt is returned for malformed checkpoint sets.
var ErrCorrupt = errors.New("ckpt: corrupt checkpoint set")

// ErrBase is returned when a delta set's base chain cannot be resolved:
// a base set is missing, fails its pin check, disagrees on geometry, or is
// itself corrupt. It is deliberately distinct from ErrCorrupt — the delta
// set's own bytes may be perfectly fine; what's wrong is its ancestry.
var ErrBase = errors.New("ckpt: base set missing or corrupt")

// castagnoli is the CRC32C table used for every digest in the format.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Digest returns the CRC32C of b — the per-chunk digest stored in the
// manifest.
func Digest(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

// FieldInfo describes one field of the set; every rank holds an array of
// the same shape and bound.
type FieldInfo struct {
	Name string
	// Dims is the per-rank shape, slowest dimension first.
	Dims []int
	// ErrorBound is the absolute error bound the payload was compressed
	// under.
	ErrorBound float64
}

// Elems returns the per-rank element count.
func (f FieldInfo) Elems() int {
	n := 1
	for _, d := range f.Dims {
		n *= d
	}
	return n
}

// ChunkInfo locates and authenticates one chunk: the container payload of
// one (rank, field) pair.
type ChunkInfo struct {
	Rank, Field int
	Offset      int64
	Size        int64
	CRC         uint32
}

// BlobInfo describes one stored chunk of a delta set (format v3): the
// compressed container payload of one content-defined chunk that was not
// found in the base. Blobs are shared — a chunk appearing in several
// (rank, field) payloads is stored once and referenced Refs times.
type BlobInfo struct {
	// Offset/Size locate the compressed bytes; CRC authenticates them.
	Offset int64
	Size   int64
	CRC    uint32
	// RawLen is the uncompressed chunk length in bytes (multiple of 4).
	RawLen int
	// Digest is the truncated SHA-256 of the chunk's ORIGINAL uncompressed
	// bytes — the intra-set dedup key. It is provenance, not a restore
	// check: the lossy payload decodes to within the error bound of these
	// bytes, not to them exactly (CRC covers the stored bytes).
	Digest dedup.Digest
	// Refs counts the chunk-ref entries pointing at this blob.
	Refs int
	// owner is the rank-major (rank*fields+field) stream index of the first
	// entry referencing this blob — the stream whose parity stripe region
	// carries it. Derived during parse/write, not on the wire.
	owner int
}

// ChunkRef is one entry of a (rank, field) chunk-ref stream (format v3).
// Entries tile the field payload in order: each covers RawLen raw bytes,
// either from a local blob (Blob >= 0) or from the base set's restored
// content at (BaseRank, BaseField, BaseRawOff), authenticated by Digest —
// the truncated SHA-256 of those RESTORED base bytes, which restore checks
// byte-exactly after resolving the chain.
type ChunkRef struct {
	RawLen int
	// Blob indexes Manifest.Blobs for a local chunk; -1 for a base ref.
	Blob int
	// Base coordinates and content digest (base refs only).
	BaseRank, BaseField int
	BaseRawOff          int64
	Digest              dedup.Digest
}

// Local reports whether the entry carries its own stored blob.
func (c ChunkRef) Local() bool { return c.Blob >= 0 }

// Manifest is the decoded index of a checkpoint set.
type Manifest struct {
	SetName string
	// Meta is free-form provenance (the CLI stores the synthetic-data
	// recipe here so restore can check error bounds against regenerated
	// originals).
	Meta   string
	Codec  string
	Ranks  int
	Fields []FieldInfo
	// Chunks holds Ranks×len(Fields) entries in rank-major order.
	Chunks []ChunkInfo
	// ParityRanks is the number of Reed–Solomon parity shards appended to
	// each field's rank stripe (format v2; 0 in v1 sets). Any <= ParityRanks
	// lost or corrupt data chunks of a field can be reconstructed.
	ParityRanks int
	// ParityChunks holds len(Fields)×ParityRanks entries, field-major:
	// entry field*ParityRanks+j authenticates parity shard j of that
	// field's stripe. Parity entries reuse ChunkInfo with Rank = Ranks+j
	// (a virtual parity rank); their Size is the stripe length — the
	// largest data chunk of the field, to which shorter chunks are
	// zero-padded during encode. In a v3 delta set the stripe member of
	// (field, rank) is the concatenation of the blobs OWNED by that
	// (rank, field) stream — parity covers only locally-written bytes;
	// base-referenced content is the base set's responsibility.
	ParityChunks []ChunkInfo

	// Delta-set fields (format v3; zero values on v1/v2 sets).
	//
	// BaseName names the immediate base set; BasePin is the CRC32C of the
	// base's canonical encoded manifest, so restore refuses a same-named
	// impostor. ChainDepth is this set's distance from the full set at the
	// root of the chain (1 = delta on a full set; capped at maxChainDepth).
	BaseName   string
	BasePin    uint32
	ChainDepth int
	// DedupMin/Avg/Max are the content-defined chunking bounds the set was
	// written with (bytes; alignment is fixed at dedupAlign).
	DedupMin, DedupAvg, DedupMax int
	// Blobs is the stored-chunk table; Entries holds Ranks×len(Fields)
	// chunk-ref streams in rank-major order, each tiling its field payload.
	Blobs   []BlobInfo
	Entries [][]ChunkRef
}

// IsDelta reports whether the set dedups against a base chain (format v3).
func (m *Manifest) IsDelta() bool { return m.ChainDepth > 0 }

// DedupParams returns the chunking geometry the set was written with.
func (m *Manifest) DedupParams() dedup.Params {
	return dedup.Params{MinSize: m.DedupMin, AvgSize: m.DedupAvg, MaxSize: m.DedupMax, Align: dedupAlign}
}

// LocalRawBytes is the uncompressed size of content stored in this set's
// own blobs (each shared blob counted once).
func (m *Manifest) LocalRawBytes() int64 {
	var n int64
	for _, b := range m.Blobs {
		n += int64(b.RawLen)
	}
	return n
}

// RefRawBytes is the uncompressed size of content satisfied by base
// references plus intra-set blob sharing — raw bytes the set did NOT store.
func (m *Manifest) RefRawBytes() int64 { return m.RawBytes() - m.LocalRawBytes() }

// DedupRatio is the fraction of the set's raw bytes not stored locally.
// 0 on full sets.
func (m *Manifest) DedupRatio() float64 {
	if !m.IsDelta() || m.RawBytes() == 0 {
		return 0
	}
	return float64(m.RefRawBytes()) / float64(m.RawBytes())
}

// NumChunks returns the data chunk count, Ranks × fields.
func (m *Manifest) NumChunks() int { return m.Ranks * len(m.Fields) }

// NumParityChunks returns the parity chunk count, fields × ParityRanks.
func (m *Manifest) NumParityChunks() int { return len(m.Fields) * m.ParityRanks }

// Chunk returns the entry for (rank, field).
func (m *Manifest) Chunk(rank, field int) *ChunkInfo {
	return &m.Chunks[rank*len(m.Fields)+field]
}

// ParityChunk returns the entry for parity shard j of the field's stripe.
func (m *Manifest) ParityChunk(field, j int) *ChunkInfo {
	return &m.ParityChunks[field*m.ParityRanks+j]
}

// ParityBytes is the total parity shard size on the medium.
func (m *Manifest) ParityBytes() int64 {
	var n int64
	for _, c := range m.ParityChunks {
		n += c.Size
	}
	return n
}

// formatVersion is the wire version this manifest encodes as.
func (m *Manifest) formatVersion() uint32 {
	if m.IsDelta() {
		return version3
	}
	if m.ParityRanks > 0 {
		return version2
	}
	return version
}

// RawBytes is the uncompressed payload size the set represents.
func (m *Manifest) RawBytes() int64 {
	var n int64
	for _, f := range m.Fields {
		n += int64(f.Elems()) * 4
	}
	return n * int64(m.Ranks)
}

// PayloadBytes is the total compressed chunk size (blob size on delta sets).
func (m *Manifest) PayloadBytes() int64 {
	var n int64
	for _, c := range m.Chunks {
		n += c.Size
	}
	for _, b := range m.Blobs {
		n += b.Size
	}
	return n
}

func appendString(b []byte, s string) []byte {
	b = wire.AppendUint32(b, uint32(len(s)))
	return append(b, s...)
}

func readString(rd *wire.Reader, maxLen int) (string, bool) {
	n := int(rd.Uint32())
	if rd.Err() != nil || n < 0 || n > maxLen {
		return "", false
	}
	return string(rd.Bytes(n)), rd.Err() == nil
}

// encode serializes the manifest. A set with no parity encodes exactly as
// format v1 — adding the erasure-coding layer changed no v1 byte.
func (m *Manifest) encode() []byte {
	var b []byte
	b = wire.AppendUint32(b, magic)
	b = wire.AppendUint32(b, m.formatVersion())
	b = appendString(b, m.SetName)
	b = appendString(b, m.Meta)
	b = appendString(b, m.Codec)
	b = wire.AppendUint32(b, uint32(m.Ranks))
	b = wire.AppendUint32(b, uint32(len(m.Fields)))
	for _, f := range m.Fields {
		b = appendString(b, f.Name)
		b = wire.AppendUint32(b, uint32(len(f.Dims)))
		for _, d := range f.Dims {
			b = wire.AppendUint64(b, uint64(d))
		}
		b = wire.AppendFloat64(b, f.ErrorBound)
	}
	if m.IsDelta() {
		// v3 replaces the dense chunk table with base provenance, chunking
		// geometry, the blob table, and per-(rank,field) chunk-ref streams.
		b = appendString(b, m.BaseName)
		b = wire.AppendUint32(b, m.BasePin)
		b = wire.AppendUint32(b, uint32(m.ChainDepth))
		b = wire.AppendUint32(b, uint32(m.DedupMin))
		b = wire.AppendUint32(b, uint32(m.DedupAvg))
		b = wire.AppendUint32(b, uint32(m.DedupMax))
		b = wire.AppendUint32(b, uint32(len(m.Blobs)))
		for _, bl := range m.Blobs {
			b = wire.AppendUint64(b, uint64(bl.Offset))
			b = wire.AppendUint64(b, uint64(bl.Size))
			b = wire.AppendUint32(b, bl.CRC)
			b = wire.AppendUint32(b, uint32(bl.RawLen))
			b = append(b, bl.Digest[:]...)
			b = wire.AppendUint32(b, uint32(bl.Refs))
		}
		for _, stream := range m.Entries {
			b = wire.AppendUint32(b, uint32(len(stream)))
			for _, e := range stream {
				b = wire.AppendUint32(b, uint32(e.RawLen))
				if e.Local() {
					b = append(b, 0)
					b = wire.AppendUint32(b, uint32(e.Blob))
				} else {
					b = append(b, 1)
					b = wire.AppendUint32(b, uint32(e.BaseRank))
					b = wire.AppendUint32(b, uint32(e.BaseField))
					b = wire.AppendUint64(b, uint64(e.BaseRawOff))
					b = append(b, e.Digest[:]...)
				}
			}
		}
		// v3 always carries the parity count (0 = no parity layer).
		b = wire.AppendUint32(b, uint32(m.ParityRanks))
		for _, c := range m.ParityChunks {
			b = wire.AppendUint64(b, uint64(c.Offset))
			b = wire.AppendUint64(b, uint64(c.Size))
			b = wire.AppendUint32(b, c.CRC)
		}
		return b
	}
	for _, c := range m.Chunks {
		b = wire.AppendUint64(b, uint64(c.Offset))
		b = wire.AppendUint64(b, uint64(c.Size))
		b = wire.AppendUint32(b, c.CRC)
	}
	if m.ParityRanks > 0 {
		b = wire.AppendUint32(b, uint32(m.ParityRanks))
		for _, c := range m.ParityChunks {
			b = wire.AppendUint64(b, uint64(c.Offset))
			b = wire.AppendUint64(b, uint64(c.Size))
			b = wire.AppendUint32(b, c.CRC)
		}
	}
	return b
}

// parseManifest decodes and validates a manifest against the set's file
// size. Every count is capped before allocation and every chunk must lie
// inside the payload region.
func parseManifest(buf []byte, fileSize int64) (*Manifest, error) {
	rd := wire.NewReader(buf, ErrCorrupt)
	if rd.Uint32() != magic {
		return nil, ErrCorrupt
	}
	v := rd.Uint32()
	if v != version && v != version2 && v != version3 {
		if rd.Err() != nil {
			return nil, ErrCorrupt
		}
		return nil, fmt.Errorf("ckpt: unsupported version %d", v)
	}
	var m Manifest
	var ok bool
	if m.SetName, ok = readString(&rd, maxNameLen); !ok {
		return nil, ErrCorrupt
	}
	if m.Meta, ok = readString(&rd, maxMetaLen); !ok {
		return nil, ErrCorrupt
	}
	if m.Codec, ok = readString(&rd, maxCodecLen); !ok {
		return nil, ErrCorrupt
	}
	if m.Codec == "" {
		return nil, ErrCorrupt
	}
	m.Ranks = int(rd.Uint32())
	nFields := int(rd.Uint32())
	if rd.Err() != nil || m.Ranks <= 0 || m.Ranks > maxRanks ||
		nFields <= 0 || nFields > maxFields || m.Ranks*nFields > maxChunks {
		return nil, ErrCorrupt
	}
	m.Fields = make([]FieldInfo, nFields)
	for i := range m.Fields {
		f := &m.Fields[i]
		if f.Name, ok = readString(&rd, maxNameLen); !ok || f.Name == "" {
			return nil, ErrCorrupt
		}
		nd := int(rd.Uint32())
		if rd.Err() != nil || nd <= 0 || nd > maxDims {
			return nil, ErrCorrupt
		}
		f.Dims = make([]int, nd)
		elems := 1
		for j := range f.Dims {
			d := rd.Uint64()
			if d == 0 || d > 1<<40 {
				return nil, ErrCorrupt
			}
			f.Dims[j] = int(d)
			elems *= int(d)
			if elems <= 0 || elems > maxElems {
				return nil, ErrCorrupt
			}
		}
		f.ErrorBound = rd.Float64()
		if rd.Err() != nil || !(f.ErrorBound > 0) {
			return nil, ErrCorrupt
		}
	}
	payloadEnd := fileSize - footerLen
	if v == version3 {
		if err := parseDelta(&rd, &m, payloadEnd); err != nil {
			return nil, err
		}
		if rd.Remaining() != 0 {
			return nil, ErrCorrupt
		}
		return &m, nil
	}
	n := m.Ranks * nFields
	m.Chunks = make([]ChunkInfo, n)
	for i := range m.Chunks {
		c := &m.Chunks[i]
		c.Rank, c.Field = i/nFields, i%nFields
		c.Offset = int64(rd.Uint64())
		c.Size = int64(rd.Uint64())
		c.CRC = rd.Uint32()
		if rd.Err() != nil || c.Offset < headerLen || c.Size < 0 ||
			c.Offset+c.Size > payloadEnd || c.Offset+c.Size < c.Offset {
			return nil, ErrCorrupt
		}
	}
	if v == version2 {
		m.ParityRanks = int(rd.Uint32())
		if rd.Err() != nil || m.ParityRanks < 1 || m.ParityRanks > maxParityRanks ||
			m.Ranks+m.ParityRanks > ec.MaxShards {
			return nil, ErrCorrupt
		}
		m.ParityChunks = make([]ChunkInfo, nFields*m.ParityRanks)
		for i := range m.ParityChunks {
			c := &m.ParityChunks[i]
			c.Field = i / m.ParityRanks
			c.Rank = m.Ranks + i%m.ParityRanks
			c.Offset = int64(rd.Uint64())
			c.Size = int64(rd.Uint64())
			c.CRC = rd.Uint32()
			if rd.Err() != nil || c.Offset < headerLen || c.Size < 0 ||
				c.Offset+c.Size > payloadEnd || c.Offset+c.Size < c.Offset {
				return nil, ErrCorrupt
			}
		}
		// Stripe coherence: every parity shard of a field carries the
		// stripe length — the largest data chunk of that field, to which
		// shorter chunks are zero-padded during encode.
		for fi := 0; fi < nFields; fi++ {
			var shardLen int64
			for r := 0; r < m.Ranks; r++ {
				if s := m.Chunk(r, fi).Size; s > shardLen {
					shardLen = s
				}
			}
			for j := 0; j < m.ParityRanks; j++ {
				if m.ParityChunk(fi, j).Size != shardLen {
					return nil, ErrCorrupt
				}
			}
		}
	}
	if rd.Remaining() != 0 {
		return nil, ErrCorrupt
	}
	return &m, nil
}

// parseDelta decodes the v3 sections (base provenance, chunking geometry,
// blob table, chunk-ref streams, parity) into m, enforcing the format's
// structural invariants so a forged manifest can neither demand giant
// allocations nor smuggle an inconsistent dedup graph past restore:
//
//   - blobs tile the payload region contiguously from the header on;
//   - every (rank, field) ref stream tiles its field payload exactly;
//   - each blob's wire refcount equals the number of entries citing it;
//   - blob owners (first-citing stream) are non-decreasing — the order the
//     in-order drain loop necessarily commits them in;
//   - parity stripes match the per-rank local-region lengths.
func parseDelta(rd *wire.Reader, m *Manifest, payloadEnd int64) error {
	var ok bool
	if m.BaseName, ok = readString(rd, maxNameLen); !ok || m.BaseName == "" {
		return ErrCorrupt
	}
	m.BasePin = rd.Uint32()
	m.ChainDepth = int(rd.Uint32())
	m.DedupMin = int(rd.Uint32())
	m.DedupAvg = int(rd.Uint32())
	m.DedupMax = int(rd.Uint32())
	if rd.Err() != nil || m.ChainDepth < 1 || m.ChainDepth > maxChainDepth {
		return ErrCorrupt
	}
	p := m.DedupParams()
	if p.Validate() != nil {
		return ErrCorrupt
	}

	const blobWireLen = 8 + 8 + 4 + 4 + DigestWireLen + 4
	nBlobs := int(rd.Uint32())
	if rd.Err() != nil || nBlobs < 0 || nBlobs > maxChunks || int64(nBlobs)*blobWireLen > int64(rd.Remaining()) {
		return ErrCorrupt
	}
	m.Blobs = make([]BlobInfo, nBlobs)
	offset := int64(headerLen)
	for i := range m.Blobs {
		b := &m.Blobs[i]
		b.Offset = int64(rd.Uint64())
		b.Size = int64(rd.Uint64())
		b.CRC = rd.Uint32()
		b.RawLen = int(rd.Uint32())
		copy(b.Digest[:], rd.Bytes(DigestWireLen))
		b.Refs = int(rd.Uint32())
		b.owner = -1
		if rd.Err() != nil || b.Offset != offset || b.Size < 1 || b.Offset+b.Size > payloadEnd ||
			b.RawLen < dedupAlign || b.RawLen > dedup.MaxChunkSize || b.RawLen%dedupAlign != 0 ||
			b.Refs < 1 || b.Refs > maxChunks {
			return ErrCorrupt
		}
		offset += b.Size
	}

	nFields := len(m.Fields)
	n := m.Ranks * nFields
	m.Entries = make([][]ChunkRef, n)
	refs := make([]int, nBlobs) // recomputed per-blob refcounts
	for s := range m.Entries {
		fi := s % nFields
		fieldBytes := int64(m.Fields[fi].Elems()) * 4
		cnt := int(rd.Uint32())
		if rd.Err() != nil || cnt < 1 || int64(cnt) > fieldBytes/int64(p.MinSize)+2 ||
			int64(cnt)*9 > int64(rd.Remaining()) {
			return ErrCorrupt
		}
		stream := make([]ChunkRef, cnt)
		var tiled int64
		for i := range stream {
			e := &stream[i]
			e.RawLen = int(rd.Uint32())
			kind := rd.Bytes(1)
			if rd.Err() != nil || e.RawLen < dedupAlign || e.RawLen%dedupAlign != 0 {
				return ErrCorrupt
			}
			switch kind[0] {
			case 0:
				e.Blob = int(rd.Uint32())
				if rd.Err() != nil || e.Blob < 0 || e.Blob >= nBlobs ||
					m.Blobs[e.Blob].RawLen != e.RawLen {
					return ErrCorrupt
				}
				refs[e.Blob]++
				if refs[e.Blob] > m.Blobs[e.Blob].Refs { // refcount overflow
					return ErrCorrupt
				}
				if m.Blobs[e.Blob].owner < 0 {
					m.Blobs[e.Blob].owner = s
				}
			case 1:
				e.Blob = -1
				e.BaseRank = int(rd.Uint32())
				e.BaseField = int(rd.Uint32())
				e.BaseRawOff = int64(rd.Uint64())
				copy(e.Digest[:], rd.Bytes(DigestWireLen))
				if rd.Err() != nil || e.BaseRank < 0 || e.BaseRank >= m.Ranks ||
					e.BaseField < 0 || e.BaseField >= nFields ||
					e.BaseRawOff < 0 || e.BaseRawOff%dedupAlign != 0 ||
					e.BaseRawOff+int64(e.RawLen) > int64(m.Fields[e.BaseField].Elems())*4 {
					return ErrCorrupt
				}
			default:
				return ErrCorrupt
			}
			tiled += int64(e.RawLen)
			if tiled > fieldBytes {
				return ErrCorrupt
			}
		}
		if tiled != fieldBytes {
			return ErrCorrupt
		}
		m.Entries[s] = stream
	}
	// Every blob must be cited exactly Refs times, and owners must appear
	// in commit order (the in-order drain assigns blob IDs as streams cite
	// new content, so a later blob can never be first-cited earlier).
	owner := -1
	for i := range m.Blobs {
		if refs[i] != m.Blobs[i].Refs || m.Blobs[i].owner < owner {
			return ErrCorrupt
		}
		owner = m.Blobs[i].owner
	}

	m.ParityRanks = int(rd.Uint32())
	if rd.Err() != nil || m.ParityRanks < 0 || m.ParityRanks > maxParityRanks ||
		m.Ranks+m.ParityRanks > ec.MaxShards {
		return ErrCorrupt
	}
	if m.ParityRanks == 0 {
		return nil
	}
	m.ParityChunks = make([]ChunkInfo, nFields*m.ParityRanks)
	for i := range m.ParityChunks {
		c := &m.ParityChunks[i]
		c.Field = i / m.ParityRanks
		c.Rank = m.Ranks + i%m.ParityRanks
		c.Offset = int64(rd.Uint64())
		c.Size = int64(rd.Uint64())
		c.CRC = rd.Uint32()
		if rd.Err() != nil || c.Offset < headerLen || c.Size < 0 ||
			c.Offset+c.Size > payloadEnd || c.Offset+c.Size < c.Offset {
			return ErrCorrupt
		}
	}
	// Stripe coherence: every parity shard of a field carries the stripe
	// length — the longest local region (concatenated owned blobs) of any
	// rank in that field.
	regions := m.localRegionSizes()
	for fi := 0; fi < nFields; fi++ {
		var stripeLen int64
		for r := 0; r < m.Ranks; r++ {
			if s := regions[r*nFields+fi]; s > stripeLen {
				stripeLen = s
			}
		}
		for j := 0; j < m.ParityRanks; j++ {
			if m.ParityChunk(fi, j).Size != stripeLen {
				return ErrCorrupt
			}
		}
	}
	return nil
}

// localRegionSizes returns, per rank-major (rank, field) stream, the total
// compressed size of the blobs that stream owns — the stripe member the
// parity layer protects.
func (m *Manifest) localRegionSizes() []int64 {
	regions := make([]int64, m.Ranks*len(m.Fields))
	for i := range m.Blobs {
		regions[m.Blobs[i].owner] += m.Blobs[i].Size
	}
	return regions
}

// ReadManifest locates the footer on the medium, verifies the manifest's
// own digest, and decodes it.
func ReadManifest(med Medium) (*Manifest, error) {
	size := med.Size()
	if size < headerLen+footerLen {
		return nil, ErrCorrupt
	}
	var foot [footerLen]byte
	if _, err := med.ReadAt(foot[:], size-footerLen); err != nil {
		return nil, fmt.Errorf("ckpt: reading footer: %w", err)
	}
	rd := wire.NewReader(foot[:], ErrCorrupt)
	mOff := int64(rd.Uint64())
	mLen := int64(rd.Uint64())
	mCRC := rd.Uint32()
	if rd.Uint32() != magic || rd.Err() != nil {
		return nil, ErrCorrupt
	}
	if mOff < headerLen || mLen <= 0 || mOff+mLen != size-footerLen {
		return nil, ErrCorrupt
	}
	mb := make([]byte, mLen)
	if _, err := med.ReadAt(mb, mOff); err != nil {
		return nil, fmt.Errorf("ckpt: reading manifest: %w", err)
	}
	if Digest(mb) != mCRC {
		return nil, ErrCorrupt
	}
	return parseManifest(mb, size)
}

// OverheadBytes estimates the framing cost of a checkpoint set beyond its
// compressed payload: header, footer, and a manifest with the given field
// and rank counts (avgNameLen covers SetName/Meta/field names, ndims the
// per-field shape entries). The cluster fleet model uses this so
// contended-ingress traffic reflects manifest + chunk-table overheads, not
// just payload bytes.
func OverheadBytes(fields, ranks, avgNameLen, ndims int) int64 {
	if fields <= 0 || ranks <= 0 {
		return 0
	}
	if avgNameLen <= 0 {
		avgNameLen = 16
	}
	if ndims <= 0 {
		ndims = 3
	}
	manifest := int64(8)                                        // magic+version
	manifest += 3 * int64(4+avgNameLen)                         // set name, meta, codec
	manifest += 8                                               // ranks + nfields
	manifest += int64(fields) * int64(4+avgNameLen+4+8*ndims+8) // field table
	manifest += int64(fields) * int64(ranks) * 20               // chunk table
	return headerLen + footerLen + manifest
}
