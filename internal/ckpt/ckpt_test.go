package ckpt

import (
	"bytes"
	"errors"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"lcpio/internal/netsim"
	"lcpio/internal/nfs"
)

// faultyNFSMount returns a default mount with seeded wire-level faults.
func faultyNFSMount(seed int64) nfs.Mount {
	m := nfs.DefaultMount()
	m.Faults = nfs.FaultConfig{
		Injector:       netsim.NewInjector(seed),
		DropProb:       0.05,
		ShortWriteProb: 0.05,
	}
	return m
}

// testSet builds a deterministic small set: smooth fields with rank-distinct
// phase shifts, the kind of data the sz/zfp models were built for.
func testSet(ranks int) Set {
	dims := []int{16, 24}
	elems := dims[0] * dims[1]
	mk := func(rank, field int) []float32 {
		d := make([]float32, elems)
		for i := range d {
			x := float64(i%dims[1]) / float64(dims[1])
			y := float64(i/dims[1]) / float64(dims[0])
			d[i] = float32(math.Sin(6*x+float64(rank)) * math.Cos(4*y+float64(field)))
		}
		return d
	}
	fields := []Field{
		{Name: "pressure", Dims: dims, ErrorBound: 1e-3},
		{Name: "velocity_x", Dims: dims, ErrorBound: 1e-4},
	}
	for fi := range fields {
		for r := 0; r < ranks; r++ {
			fields[fi].Data = append(fields[fi].Data, mk(r, fi))
		}
	}
	return Set{Name: "ts", Meta: "unit-test", Codec: "sz", Ranks: ranks, Fields: fields}
}

func mustWrite(t *testing.T, med Medium, set Set, opts WriteOptions) *WriteResult {
	t.Helper()
	res, err := Write(med, set, opts)
	if err != nil {
		t.Fatalf("Write: %v", err)
	}
	return res
}

func checkRestored(t *testing.T, set Set, got *Restored) {
	t.Helper()
	for fi, f := range set.Fields {
		rf := got.Field(f.Name)
		if rf == nil {
			t.Fatalf("field %q missing from restore", f.Name)
		}
		for r := 0; r < set.Ranks; r++ {
			data := rf.Data[r]
			if data == nil {
				t.Fatalf("field %q rank %d not restored", f.Name, r)
			}
			for i, orig := range set.Fields[fi].Data[r] {
				if diff := math.Abs(float64(orig) - float64(data[i])); diff > f.ErrorBound*1.0000001 {
					t.Fatalf("field %q rank %d elem %d: |%g-%g| = %g > eb %g",
						f.Name, r, i, orig, data[i], diff, f.ErrorBound)
				}
			}
		}
	}
}

func TestRoundTripByteIdenticalAcrossWorkerCounts(t *testing.T) {
	set := testSet(3)
	var ref []byte
	var refManifest []ChunkInfo
	for _, workers := range []int{1, 2, 4, 8} {
		med := NewMemMedium()
		res := mustWrite(t, med, set, WriteOptions{Workers: workers})
		if res.Chunks != 6 {
			t.Fatalf("workers=%d: chunks = %d, want 6", workers, res.Chunks)
		}
		if ref == nil {
			ref = append([]byte(nil), med.Bytes()...)
			refManifest = append([]ChunkInfo(nil), res.Manifest.Chunks...)
		} else {
			if !bytes.Equal(ref, med.Bytes()) {
				t.Fatalf("workers=%d: file bytes differ from workers=1", workers)
			}
			for i, c := range res.Manifest.Chunks {
				if c != refManifest[i] {
					t.Fatalf("workers=%d: chunk %d manifest entry differs: %+v vs %+v",
						workers, i, c, refManifest[i])
				}
			}
		}
		got, err := Restore(med, RestoreOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: Restore: %v", workers, err)
		}
		checkRestored(t, set, got)
		if got.Report.ChunksOK != 6 || got.Report.ChunksReread != 0 || len(got.Report.Failed) != 0 {
			t.Fatalf("workers=%d: unexpected report %+v", workers, got.Report)
		}
	}
}

func TestManifestRoundTrip(t *testing.T) {
	med := NewMemMedium()
	set := testSet(2)
	res := mustWrite(t, med, set, WriteOptions{Workers: 2})
	m, err := ReadManifest(med)
	if err != nil {
		t.Fatalf("ReadManifest: %v", err)
	}
	if m.SetName != set.Name || m.Meta != set.Meta || m.Codec != set.Codec || m.Ranks != set.Ranks {
		t.Fatalf("manifest header mismatch: %+v", m)
	}
	if m.NumChunks() != res.Chunks || m.PayloadBytes() != res.PayloadBytes || m.RawBytes() != res.RawBytes {
		t.Fatalf("manifest sizes disagree with write result")
	}
	if c := m.Chunk(1, 1); c.Rank != 1 || c.Field != 1 {
		t.Fatalf("Chunk(1,1) = %+v", c)
	}
}

func TestOverlapPipelinedBeatsSerial(t *testing.T) {
	med := NewMemMedium()
	res := mustWrite(t, med, testSet(4), WriteOptions{Workers: 4})
	if res.SimPipelinedSeconds > res.SimSerialSeconds+1e-12 {
		t.Fatalf("pipelined %.6g > serial %.6g", res.SimPipelinedSeconds, res.SimSerialSeconds)
	}
	if res.OverlapMargin() < 0 {
		t.Fatalf("negative overlap margin %v", res.OverlapMargin())
	}
	if res.SimWriteSeconds <= 0 || res.CompressWallSeconds <= 0 {
		t.Fatalf("degenerate timings: %+v", res)
	}
	if res.Ratio() <= 1 {
		t.Fatalf("ratio %v not > 1 on smooth data", res.Ratio())
	}
}

func TestWriteFaultsRetriedToSuccess(t *testing.T) {
	set := testSet(3)
	clean := NewMemMedium()
	mustWrite(t, clean, set, WriteOptions{Workers: 2})

	inner := NewMemMedium()
	med := NewFaultyMedium(inner, 7, FaultProfile{WriteErrProb: 0.25, ShortWriteProb: 0.25})
	res := mustWrite(t, med, set, WriteOptions{Workers: 2})
	if res.Retries == 0 {
		t.Fatal("expected transient faults to force retries")
	}
	if !bytes.Equal(clean.Bytes(), inner.Bytes()) {
		t.Fatal("faulty-path bytes differ from clean write")
	}
	got, err := Restore(inner, RestoreOptions{Workers: 2})
	if err != nil {
		t.Fatalf("Restore after faulty write: %v", err)
	}
	checkRestored(t, set, got)
}

func TestWriteFaultDeterminism(t *testing.T) {
	set := testSet(2)
	run := func(seed int64) int64 {
		med := NewFaultyMedium(NewMemMedium(), seed, FaultProfile{WriteErrProb: 0.3, ShortWriteProb: 0.3})
		return mustWrite(t, med, set, WriteOptions{Workers: 2}).Retries
	}
	if a, b := run(11), run(11); a != b {
		t.Fatalf("same seed, different retry counts: %d vs %d", a, b)
	}
}

func TestRetryExhaustion(t *testing.T) {
	med := NewFaultyMedium(NewMemMedium(), 1, FaultProfile{WriteErrProb: 1})
	_, err := Write(med, testSet(1), WriteOptions{Workers: 1, Retry: RetryPolicy{MaxAttempts: 3}})
	if err == nil || !errors.Is(err, ErrTransient) {
		t.Fatalf("want ErrTransient exhaustion, got %v", err)
	}
	if !strings.Contains(err.Error(), "giving up after 3 attempts") {
		t.Fatalf("error lacks attempt count: %v", err)
	}
}

func TestTransientReadCorruptionRereadsOnlyThatChunk(t *testing.T) {
	set := testSet(3)
	inner := NewMemMedium()
	mustWrite(t, inner, set, WriteOptions{Workers: 2})
	med := NewFaultyMedium(inner, 5, FaultProfile{ReadCorruptProb: 0.5})
	got, err := Restore(med, RestoreOptions{Workers: 2})
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	checkRestored(t, set, got)
	if got.Report.ChunksReread == 0 {
		t.Fatal("expected at least one digest-triggered re-read")
	}
	if got.Report.ChunksReread > got.Report.ChunksOK {
		t.Fatalf("reread %d chunks but only %d total OK", got.Report.ChunksReread, got.Report.ChunksOK)
	}
	if got.Report.Retries < int64(got.Report.ChunksReread) {
		t.Fatalf("retries %d below reread count %d", got.Report.Retries, got.Report.ChunksReread)
	}
}

func TestTransientReadErrorsRetried(t *testing.T) {
	set := testSet(2)
	inner := NewMemMedium()
	mustWrite(t, inner, set, WriteOptions{Workers: 2})
	med := NewFaultyMedium(inner, 3, FaultProfile{ReadErrProb: 0.2})
	got, err := Restore(med, RestoreOptions{Workers: 2, Retry: RetryPolicy{MaxAttempts: 8}})
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	checkRestored(t, set, got)
}

func TestPersistentCorruptionDetectedAndReported(t *testing.T) {
	set := testSet(3)
	med := NewMemMedium()
	res := mustWrite(t, med, set, WriteOptions{Workers: 2})
	bad := res.Manifest.Chunk(1, 0)
	med.Corrupt(bad.Offset + bad.Size/2)

	if _, err := Restore(med, RestoreOptions{Workers: 2}); err == nil {
		t.Fatal("strict restore accepted a corrupted chunk")
	}

	got, err := Restore(med, RestoreOptions{Workers: 2, AllowPartial: true,
		Retry: RetryPolicy{MaxAttempts: 2}})
	if err != nil {
		t.Fatalf("partial restore: %v", err)
	}
	if len(got.Report.Failed) != 1 {
		t.Fatalf("failed = %+v, want exactly the corrupted chunk", got.Report.Failed)
	}
	f := got.Report.Failed[0]
	if f.Rank != 1 || f.Field != 0 || !errors.Is(f.Err, ErrCorrupt) {
		t.Fatalf("wrong failure report: %+v", f)
	}
	if got.Fields[0].Data[1] != nil {
		t.Fatal("corrupted chunk returned data")
	}
	// Every other chunk must still be within bound.
	if got.Report.ChunksOK != 5 {
		t.Fatalf("chunksOK = %d, want 5", got.Report.ChunksOK)
	}
	if len(got.Report.MissingRanks) != 0 {
		t.Fatalf("rank 1 still has its other field; MissingRanks = %v", got.Report.MissingRanks)
	}
}

func TestMissingRankReported(t *testing.T) {
	set := testSet(3)
	med := NewMemMedium()
	res := mustWrite(t, med, set, WriteOptions{Workers: 2})
	for fi := range set.Fields {
		c := res.Manifest.Chunk(2, fi)
		med.Corrupt(c.Offset + 3)
	}
	got, err := Restore(med, RestoreOptions{Workers: 2, AllowPartial: true,
		Retry: RetryPolicy{MaxAttempts: 2}})
	if err != nil {
		t.Fatalf("partial restore: %v", err)
	}
	if len(got.Report.MissingRanks) != 1 || got.Report.MissingRanks[0] != 2 {
		t.Fatalf("MissingRanks = %v, want [2]", got.Report.MissingRanks)
	}
	if len(got.Report.Failed) != len(set.Fields) {
		t.Fatalf("failed = %+v", got.Report.Failed)
	}
}

func TestVerifyShallowAndDeep(t *testing.T) {
	set := testSet(2)
	med := NewMemMedium()
	res := mustWrite(t, med, set, WriteOptions{Workers: 2})
	for _, deep := range []bool{false, true} {
		rep, err := Verify(med, deep, 2)
		if err != nil {
			t.Fatalf("Verify(deep=%v): %v", deep, err)
		}
		if rep.ChunksOK != rep.Chunks || rep.Chunks != res.Chunks {
			t.Fatalf("Verify(deep=%v) = %+v", deep, rep)
		}
	}
	c := res.Manifest.Chunk(0, 1)
	med.Corrupt(c.Offset + 1)
	rep, err := Verify(med, false, 2)
	if err != nil {
		t.Fatalf("Verify corrupted: %v", err)
	}
	if len(rep.Failed) != 1 || rep.Failed[0].Rank != 0 || rep.Failed[0].Field != 1 {
		t.Fatalf("Verify failed list = %+v", rep.Failed)
	}
}

func TestFileMediumRoundTrip(t *testing.T) {
	set := testSet(2)
	path := filepath.Join(t.TempDir(), "set.lcpt")
	fm, err := CreateFileMedium(path)
	if err != nil {
		t.Fatal(err)
	}
	mustWrite(t, fm, set, WriteOptions{Workers: 2})
	if err := fm.Close(); err != nil {
		t.Fatal(err)
	}
	rm, err := OpenFileMedium(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rm.Close()
	got, err := Restore(rm, RestoreOptions{Workers: 2})
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	checkRestored(t, set, got)
}

func TestWireFaultsFlowThroughMount(t *testing.T) {
	set := testSet(2)
	med := NewMemMedium()
	opts := WriteOptions{Workers: 2}
	opts.Mount = faultyNFSMount(9)
	res := mustWrite(t, med, set, opts)
	if res.WireRetransmits == 0 {
		t.Fatal("expected injected wire retransmits")
	}
	got, err := Restore(med, RestoreOptions{Workers: 2})
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	checkRestored(t, set, got)
}

func TestSetValidation(t *testing.T) {
	base := testSet(2)
	cases := []struct {
		name string
		mut  func(*Set)
	}{
		{"no ranks", func(s *Set) { s.Ranks = 0 }},
		{"no fields", func(s *Set) { s.Fields = nil }},
		{"bad codec", func(s *Set) { s.Codec = "nope" }},
		{"empty codec", func(s *Set) { s.Codec = "" }},
		{"bad dim", func(s *Set) { s.Fields[0].Dims = []int{0, 3} }},
		{"bad eb", func(s *Set) { s.Fields[0].ErrorBound = 0 }},
		{"rank mismatch", func(s *Set) { s.Fields[0].Data = s.Fields[0].Data[:1] }},
		{"elem mismatch", func(s *Set) { s.Fields[0].Data[0] = s.Fields[0].Data[0][:7] }},
		{"empty field name", func(s *Set) { s.Fields[0].Name = "" }},
	}
	for _, tc := range cases {
		s := testSet(2)
		tc.mut(&s)
		if _, err := Write(NewMemMedium(), s, WriteOptions{}); err == nil {
			t.Errorf("%s: validation passed", tc.name)
		}
	}
	if err := base.validate(); err != nil {
		t.Fatalf("base set invalid: %v", err)
	}
}

func TestReadManifestRejectsTruncation(t *testing.T) {
	med := NewMemMedium()
	mustWrite(t, med, testSet(1), WriteOptions{Workers: 1})
	full := med.Bytes()
	for _, cut := range []int{0, headerLen, len(full) - footerLen, len(full) - 1} {
		trunc := NewMemMedium()
		if cut > 0 {
			if _, err := trunc.WriteAt(full[:cut], 0); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := ReadManifest(trunc); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestEnergyReport(t *testing.T) {
	med := NewMemMedium()
	res := mustWrite(t, med, testSet(2), WriteOptions{Workers: 2})
	for _, withRestore := range []bool{false, true} {
		cmp, err := res.EnergyReport(CampaignOptions{
			Iterations: 3, ComputeSeconds: 10, WithRestore: withRestore})
		if err != nil {
			t.Fatalf("EnergyReport(restore=%v): %v", withRestore, err)
		}
		if cmp.EnergySavedPct() <= 0 {
			t.Errorf("restore=%v: tuned campaign saved %.3f%%, want > 0",
				withRestore, cmp.EnergySavedPct())
		}
		if cmp.Tuned.Seconds < cmp.Base.Seconds {
			t.Errorf("restore=%v: tuned faster than base", withRestore)
		}
	}
}

func TestOverheadBytesMatchesRealManifest(t *testing.T) {
	med := NewMemMedium()
	res := mustWrite(t, med, testSet(4), WriteOptions{Workers: 2})
	actual := res.FileBytes - res.PayloadBytes
	est := OverheadBytes(len(res.Manifest.Fields), res.Manifest.Ranks, 12, 2)
	// The estimate feeds a fleet model; it should be the right order of
	// magnitude, not exact.
	if est < actual/2 || est > actual*4 {
		t.Fatalf("OverheadBytes = %d, actual framing = %d", est, actual)
	}
}
