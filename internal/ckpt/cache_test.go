package ckpt

import (
	"testing"

	"lcpio/internal/dvfs"
	"lcpio/internal/machine"
	"lcpio/internal/nfs"
	"lcpio/internal/phases"
)

// fleetRestore writes `tenants` checkpoint sets through one shared
// WriteBackCache, then restores every tenant in turn and returns the total
// and per-tenant-mean simulated read seconds. Data is byte-identical to an
// uncached restore — only the simulated read timeline changes.
func fleetRestore(t *testing.T, tenants int, cache *WriteBackCache) (total, mean float64) {
	t.Helper()
	set := testSet(3)
	media := make([]*CachedMedium, tenants)
	for i := 0; i < tenants; i++ {
		media[i] = NewCachedMedium(NewMemMedium(), cache, string(rune('a'+i)))
	}
	// Every tenant dumps before anyone restores — the contention phase
	// that evicts earlier tenants' pages.
	for i := 0; i < tenants; i++ {
		mustWrite(t, media[i], set, WriteOptions{Workers: 2})
	}
	for i := 0; i < tenants; i++ {
		got, err := Restore(media[i], RestoreOptions{Workers: 2})
		if err != nil {
			t.Fatalf("restore tenant %d of %d: %v", i, tenants, err)
		}
		for fi, f := range set.Fields {
			for r := 0; r < set.Ranks; r++ {
				if len(got.Fields[fi].Data[r]) != len(f.Data[r]) {
					t.Fatalf("tenant %d of %d: field %d rank %d shape changed", i, tenants, fi, r)
				}
			}
		}
		total += got.Report.SimReadSeconds
	}
	return total, total / float64(tenants)
}

// readJoules prices simulated read time at the paper's tuned writing clock
// (Eqn 2/3): the read path is transit work whose critical path is the
// summed SimReadSeconds.
func readJoules(t *testing.T, simReadSec float64, bytes int64) float64 {
	t.Helper()
	chip := dvfs.Broadwell()
	node := machine.NewNode(chip, 1)
	tr := nfs.Transfer{PayloadBytes: bytes, RPCs: 1, NetworkSeconds: simReadSec}
	clock := chip.ClampFreq(phases.PaperRule().WritingFraction * chip.BaseGHz)
	return node.RunClean(machine.TransitWorkload(tr, chip), clock).Joules
}

// TestCacheEvictionDegradesRestore: with a shared write-back cache sized
// for ~3.5 dumps, a single tenant restores entirely warm (no penalty); as
// the tenant count rises past capacity, eviction makes the per-tenant mean
// restore read time and its priced energy strictly worse, and the
// fleet-total keeps growing with every added tenant.
func TestCacheEvictionDegradesRestore(t *testing.T) {
	// Size the capacity off one measured dump so the test tracks codec
	// changes.
	probe := NewMemMedium()
	res := mustWrite(t, probe, testSet(3), WriteOptions{Workers: 2})
	capacity := res.FileBytes * 7 / 2

	var prevTotal, prevMean, prevJ float64
	for i, tenants := range []int{1, 4, 8} {
		cache := NewWriteBackCache(CacheConfig{CapacityBytes: capacity})
		total, mean := fleetRestore(t, tenants, cache)
		j := readJoules(t, mean, res.PayloadBytes)
		if i == 0 {
			if s := cache.Stats(); s.Misses != 0 {
				t.Fatalf("single tenant under multi-dump capacity missed %d times", s.Misses)
			}
		} else {
			if i == 1 {
				// First contended point: the warm→thrashing knee must be
				// a sharp per-tenant degradation (>1.5×), not noise.
				if mean <= prevMean*1.5 {
					t.Fatalf("%d tenants: mean read time %.6fs did not degrade beyond %.6fs",
						tenants, mean, prevMean)
				}
				if j <= prevJ {
					t.Fatalf("%d tenants: mean read energy %.3fJ did not degrade beyond %.3fJ",
						tenants, j, prevJ)
				}
			} else if mean < prevMean*0.99 || j < prevJ*0.99 {
				// Past the knee the per-tenant cost plateaus (everyone is
				// cold) but must never recover.
				t.Fatalf("%d tenants: per-tenant cost recovered: %.6fs/%.3fJ vs %.6fs/%.3fJ",
					tenants, mean, j, prevMean, prevJ)
			}
			if total <= prevTotal {
				t.Fatalf("%d tenants: fleet read time %.6fs did not grow beyond %.6fs",
					tenants, total, prevTotal)
			}
			if s := cache.Stats(); s.Misses == 0 || s.Evictions == 0 {
				t.Fatalf("%d tenants: expected misses and evictions, got %+v", tenants, s)
			}
		}
		prevTotal, prevMean, prevJ = total, mean, j
	}
}

// TestCacheUnboundedStaysWarm: CapacityBytes <= 0 is the historical
// always-warm model — no penalty at any tenant count.
func TestCacheUnboundedStaysWarm(t *testing.T) {
	cache := NewWriteBackCache(CacheConfig{})
	_, mean := fleetRestore(t, 8, cache)
	_, warm := fleetRestore(t, 1, NewWriteBackCache(CacheConfig{}))
	if mean != warm {
		t.Fatalf("unbounded cache penalized reads: %.6fs vs %.6fs", mean, warm)
	}
	if s := cache.Stats(); s.Misses != 0 || s.Evictions != 0 {
		t.Fatalf("unbounded cache evicted: %+v", s)
	}
}

// TestCacheLRUBasics pins the eviction policy at the unit level.
func TestCacheLRUBasics(t *testing.T) {
	c := NewWriteBackCache(CacheConfig{CapacityBytes: 100})
	c.wrote(cacheKey{tag: "a", off: 0}, 60)
	c.wrote(cacheKey{tag: "b", off: 0}, 60) // evicts a/0
	if p := c.read(cacheKey{tag: "b", off: 0}, 60); p != 0 {
		t.Fatalf("freshly written extent missed with penalty %v", p)
	}
	if p := c.read(cacheKey{tag: "a", off: 0}, 60); p <= 0 {
		t.Fatal("evicted extent read warm")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Evictions < 1 {
		t.Fatalf("stats %+v", s)
	}
	if s.UsedBytes > 100 && s.Evictions == 0 {
		t.Fatalf("over capacity without eviction: %+v", s)
	}
	// A miss brings the extent back in, so an immediate re-read is warm.
	if p := c.read(cacheKey{tag: "a", off: 0}, 60); p != 0 {
		t.Fatalf("re-read after miss still cold (penalty %v)", p)
	}
}
