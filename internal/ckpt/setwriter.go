package ckpt

import (
	"fmt"

	"lcpio/internal/wire"
)

// This file is the external-placement surface of the set format: the svc
// daemon assembles checkpoint sets chunk by chunk as session frames arrive
// — placement decided by its extent allocator rather than ckpt.Write's
// in-order drain — and needs to emit a format-correct header, manifest, and
// footer without the format internals leaking out of this package. A set
// finalized through these helpers is read back by the unmodified Restore /
// Verify / ReadManifest paths.

// HeaderLen is the fixed set header size; externally placed chunks must
// start at or after this offset (parseManifest enforces it on read).
const HeaderLen = headerLen

// FooterLen is the fixed footer size; a set's total size is the manifest
// offset plus its encoded length plus FooterLen.
const FooterLen = footerLen

// WriteSetHeader writes the format header for m's version at offset 0 of
// the medium (or medium view) the set occupies.
func WriteSetHeader(med Medium, m *Manifest) error {
	var header [headerLen]byte
	wire.AppendUint32(wire.AppendUint32(header[:0], magic), m.formatVersion())
	if _, err := med.WriteAt(header[:], 0); err != nil {
		return fmt.Errorf("ckpt: writing header: %w", err)
	}
	return nil
}

// FinalizeSet encodes m at offset off, appends the footer, and returns the
// total set size — the exact Size() a medium view must report for
// ReadManifest to find the footer. Chunk offsets in m are relative to the
// same view and must land between the header and off.
func FinalizeSet(med Medium, m *Manifest, off int64) (int64, error) {
	if off < headerLen {
		return 0, fmt.Errorf("ckpt: manifest offset %d inside header", off)
	}
	for i := range m.Chunks {
		c := &m.Chunks[i]
		if c.Offset < headerLen || c.Size < 0 || c.Offset+c.Size > off {
			return 0, fmt.Errorf("ckpt: chunk %d extent [%d, %d) escapes payload [%d, %d)",
				i, c.Offset, c.Offset+c.Size, headerLen, off)
		}
	}
	mb := m.encode()
	if _, err := med.WriteAt(mb, off); err != nil {
		return 0, fmt.Errorf("ckpt: writing manifest: %w", err)
	}
	var foot []byte
	foot = wire.AppendUint64(foot, uint64(off))
	foot = wire.AppendUint64(foot, uint64(len(mb)))
	foot = wire.AppendUint32(foot, Digest(mb))
	foot = wire.AppendUint32(foot, magic)
	if _, err := med.WriteAt(foot, off+int64(len(mb))); err != nil {
		return 0, fmt.Errorf("ckpt: writing footer: %w", err)
	}
	return off + int64(len(mb)) + footerLen, nil
}
