package ckpt

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"lcpio/internal/netsim"
)

// Medium is the byte store a checkpoint set lands on: positional reads and
// writes plus the current size. Implementations must be safe for concurrent
// ReadAt calls (restore fans chunks across workers); WriteAt is only ever
// called from the single writer goroutine.
type Medium interface {
	io.ReaderAt
	io.WriterAt
	Size() int64
}

// ErrTransient marks a medium fault that a retry may clear; the pipelined
// writer retries these with capped exponential backoff.
var ErrTransient = errors.New("ckpt: transient medium fault")

// MemMedium is an in-memory Medium, the default for tests and simulations.
type MemMedium struct {
	mu  sync.RWMutex
	buf []byte
}

// NewMemMedium returns an empty in-memory medium.
func NewMemMedium() *MemMedium { return &MemMedium{} }

// Size returns the current high-water mark.
func (m *MemMedium) Size() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return int64(len(m.buf))
}

// Bytes returns the stored bytes. The slice aliases the medium; callers
// must not write through it while the medium is in use.
func (m *MemMedium) Bytes() []byte {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.buf
}

// WriteAt stores p at off, growing the medium as needed.
func (m *MemMedium) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("ckpt: negative offset %d", off)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if end := off + int64(len(p)); end > int64(len(m.buf)) {
		grown := make([]byte, end)
		copy(grown, m.buf)
		m.buf = grown
	}
	copy(m.buf[off:], p)
	return len(p), nil
}

// ReadAt fills p from off.
func (m *MemMedium) ReadAt(p []byte, off int64) (int, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if off < 0 || off > int64(len(m.buf)) {
		return 0, fmt.Errorf("ckpt: offset %d outside medium of %d bytes", off, len(m.buf))
	}
	n := copy(p, m.buf[off:])
	if n < len(p) {
		return n, io.ErrUnexpectedEOF
	}
	return n, nil
}

// Corrupt flips one bit at off — a test hook for persistent bit rot.
func (m *MemMedium) Corrupt(off int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if off >= 0 && off < int64(len(m.buf)) {
		m.buf[off] ^= 0x40
	}
}

// FileMedium is a Medium over an operating-system file.
type FileMedium struct {
	f *os.File
}

// CreateFileMedium creates (or truncates) path for writing a new set.
func CreateFileMedium(path string) (*FileMedium, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &FileMedium{f: f}, nil
}

// OpenFileMedium opens an existing set read-only.
func OpenFileMedium(path string) (*FileMedium, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return &FileMedium{f: f}, nil
}

// Size stats the underlying file.
func (m *FileMedium) Size() int64 {
	fi, err := m.f.Stat()
	if err != nil {
		return 0
	}
	return fi.Size()
}

// WriteAt forwards to the file.
func (m *FileMedium) WriteAt(p []byte, off int64) (int, error) { return m.f.WriteAt(p, off) }

// ReadAt forwards to the file.
func (m *FileMedium) ReadAt(p []byte, off int64) (int, error) { return m.f.ReadAt(p, off) }

// Close closes the underlying file.
func (m *FileMedium) Close() error { return m.f.Close() }

// ReadPenaltyMedium is a Medium whose reads may carry extra simulated
// latency beyond the wire — a cold server page cache forcing a
// backing-store fetch. The restore path consults it per chunk read and adds
// the penalty to the report's SimReadSeconds; plain media read with no
// penalty, preserving the historical always-warm assumption.
type ReadPenaltyMedium interface {
	Medium
	// ReadPenaltySeconds reports (and accounts) the extra simulated seconds
	// of reading the extent [off, off+n): 0 on a cache hit.
	ReadPenaltySeconds(off, n int64) float64
}

// CacheConfig tunes a WriteBackCache.
type CacheConfig struct {
	// CapacityBytes is the page-cache budget shared by every medium
	// attached to the cache. <= 0 means unbounded (always warm — the
	// historical model).
	CapacityBytes int64
	// BackingBWBps is the backing store's read bandwidth in bits per
	// second (default 4e9, a ~500 MB/s disk array — far below the 20e9
	// page-cache absorption path of nfs.DefaultMount).
	BackingBWBps float64
	// BackingLatencySec is the per-miss positioning cost (default 5 ms).
	BackingLatencySec float64
}

func (c CacheConfig) normalized() CacheConfig {
	if c.BackingBWBps <= 0 {
		c.BackingBWBps = 4e9
	}
	if c.BackingLatencySec <= 0 {
		c.BackingLatencySec = 5e-3
	}
	return c
}

// CacheStats is a WriteBackCache's observable state.
type CacheStats struct {
	Hits, Misses, Evictions int64
	EvictedBytes, UsedBytes int64
}

// WriteBackCache models the server's shared page cache under multi-tenant
// contention: extents written through a CachedMedium are warm (write-back
// leaves the pages resident), reads of evicted extents pay a backing-store
// penalty, and an LRU policy evicts the coldest extents when tenants
// collectively overrun CapacityBytes. One cache is shared by every
// CachedMedium attached to it, which is exactly how tenant count degrades
// restore: each additional tenant's dump pushes earlier tenants' pages out.
// Safe for concurrent use.
type WriteBackCache struct {
	mu      sync.Mutex
	cfg     CacheConfig
	used    int64
	entries map[cacheKey]*cacheEntry
	// Doubly-linked LRU list; mru.next is most recent, lru.prev is the
	// eviction candidate. Sentinel nodes avoid nil checks.
	mru, lru cacheEntry
	stats    CacheStats
}

type cacheKey struct {
	tag string
	off int64
}

type cacheEntry struct {
	key        cacheKey
	size       int64
	prev, next *cacheEntry
}

// NewWriteBackCache returns a cache with the given knobs.
func NewWriteBackCache(cfg CacheConfig) *WriteBackCache {
	c := &WriteBackCache{cfg: cfg.normalized(), entries: make(map[cacheKey]*cacheEntry)}
	c.mru.next = &c.lru
	c.lru.prev = &c.mru
	return c
}

// Stats snapshots the cache counters.
func (c *WriteBackCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.UsedBytes = c.used
	return s
}

func (c *WriteBackCache) unlink(e *cacheEntry) {
	e.prev.next = e.next
	e.next.prev = e.prev
}

func (c *WriteBackCache) pushFront(e *cacheEntry) {
	e.prev = &c.mru
	e.next = c.mru.next
	e.prev.next = e
	e.next.prev = e
}

// insert makes the extent resident (touching it if already cached),
// evicting LRU extents to fit. Caller holds c.mu.
func (c *WriteBackCache) insert(key cacheKey, size int64) {
	if e := c.entries[key]; e != nil {
		c.used += size - e.size
		e.size = size
		c.unlink(e)
		c.pushFront(e)
	} else {
		e = &cacheEntry{key: key, size: size}
		c.entries[key] = e
		c.pushFront(e)
		c.used += size
	}
	limit := c.cfg.CapacityBytes
	if limit <= 0 {
		return
	}
	for c.used > limit {
		victim := c.lru.prev
		if victim == &c.mru || victim.key == key {
			break // nothing older to evict; oversized extents stay resident
		}
		c.unlink(victim)
		delete(c.entries, victim.key)
		c.used -= victim.size
		c.stats.Evictions++
		c.stats.EvictedBytes += victim.size
	}
}

// wrote records a written extent as warm.
func (c *WriteBackCache) wrote(key cacheKey, size int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.insert(key, size)
}

// read accounts one read of the extent and returns its penalty seconds:
// 0 on a hit; a miss pays the backing fetch and becomes resident (evicting
// colder extents in turn).
func (c *WriteBackCache) read(key cacheKey, size int64) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e := c.entries[key]; e != nil {
		c.unlink(e)
		c.pushFront(e)
		c.stats.Hits++
		return 0
	}
	c.stats.Misses++
	c.insert(key, size)
	return c.cfg.BackingLatencySec + float64(size)*8/c.cfg.BackingBWBps
}

// CachedMedium attaches a Medium to a shared WriteBackCache under a tenant
// tag. Bytes pass straight through — the cache only shapes the simulated
// read timeline via ReadPenaltySeconds.
type CachedMedium struct {
	inner Medium
	cache *WriteBackCache
	tag   string
}

// NewCachedMedium wraps inner; tag namespaces this medium's extents inside
// the shared cache (use the tenant or set name).
func NewCachedMedium(inner Medium, cache *WriteBackCache, tag string) *CachedMedium {
	return &CachedMedium{inner: inner, cache: cache, tag: tag}
}

// Size forwards to the wrapped medium.
func (m *CachedMedium) Size() int64 { return m.inner.Size() }

// WriteAt forwards to the wrapped medium and marks the written extent warm.
func (m *CachedMedium) WriteAt(p []byte, off int64) (int, error) {
	n, err := m.inner.WriteAt(p, off)
	if n > 0 {
		m.cache.wrote(cacheKey{tag: m.tag, off: off}, int64(n))
	}
	return n, err
}

// ReadAt forwards to the wrapped medium.
func (m *CachedMedium) ReadAt(p []byte, off int64) (int, error) { return m.inner.ReadAt(p, off) }

// ReadPenaltySeconds implements ReadPenaltyMedium against the shared cache.
func (m *CachedMedium) ReadPenaltySeconds(off, n int64) float64 {
	return m.cache.read(cacheKey{tag: m.tag, off: off}, n)
}

// FaultProfile configures a FaultyMedium. All probabilities are per call.
type FaultProfile struct {
	// WriteErrProb: WriteAt fails entirely with ErrTransient.
	WriteErrProb float64
	// ShortWriteProb: WriteAt persists only a prefix and reports
	// ErrTransient, so the writer must resume the tail.
	ShortWriteProb float64
	// ReadCorruptProb: the FIRST ReadAt covering an offset returns bytes
	// with one bit flipped; re-reads of the same offset are clean. This is
	// the transient-corruption model that makes "re-read only corrupted
	// chunks" observable.
	ReadCorruptProb float64
	// ReadErrProb: ReadAt fails with ErrTransient.
	ReadErrProb float64
}

// FaultyMedium wraps a Medium with deterministic seeded transient faults.
// Safe for concurrent use (a mutex serializes the injector).
type FaultyMedium struct {
	mu        sync.Mutex
	inner     Medium
	inj       *netsim.Injector
	prof      FaultProfile
	corrupted map[int64]bool // offsets already served one corrupted read
}

// NewFaultyMedium wraps inner with the profile, seeded deterministically.
func NewFaultyMedium(inner Medium, seed int64, prof FaultProfile) *FaultyMedium {
	return &FaultyMedium{
		inner:     inner,
		inj:       netsim.NewInjector(seed),
		prof:      prof,
		corrupted: make(map[int64]bool),
	}
}

// Size forwards to the wrapped medium.
func (m *FaultyMedium) Size() int64 { return m.inner.Size() }

// WriteAt may fail transiently or persist only a prefix.
func (m *FaultyMedium) WriteAt(p []byte, off int64) (int, error) {
	m.mu.Lock()
	writeErr := m.inj.Hit(m.prof.WriteErrProb)
	short := !writeErr && len(p) > 1 && m.inj.Hit(m.prof.ShortWriteProb)
	frac := 0.0
	if short {
		frac = 0.1 + 0.8*m.inj.Uniform()
	}
	m.mu.Unlock()
	if writeErr {
		return 0, fmt.Errorf("%w: write at %d", ErrTransient, off)
	}
	if short {
		n := int(frac * float64(len(p)))
		if n < 1 {
			n = 1
		}
		if n >= len(p) {
			n = len(p) - 1
		}
		wrote, err := m.inner.WriteAt(p[:n], off)
		if err != nil {
			return wrote, err
		}
		return wrote, fmt.Errorf("%w: short write at %d (%d of %d bytes)",
			ErrTransient, off, wrote, len(p))
	}
	return m.inner.WriteAt(p, off)
}

// ReadAt may fail transiently or corrupt the first read of a region.
func (m *FaultyMedium) ReadAt(p []byte, off int64) (int, error) {
	m.mu.Lock()
	readErr := m.inj.Hit(m.prof.ReadErrProb)
	corrupt := !readErr && len(p) > 0 && !m.corrupted[off] && m.inj.Hit(m.prof.ReadCorruptProb)
	if corrupt {
		m.corrupted[off] = true
	}
	m.mu.Unlock()
	if readErr {
		return 0, fmt.Errorf("%w: read at %d", ErrTransient, off)
	}
	n, err := m.inner.ReadAt(p, off)
	if corrupt && n > 0 {
		p[n/2] ^= 0x04
	}
	return n, err
}
