package ckpt

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"lcpio/internal/netsim"
)

// Medium is the byte store a checkpoint set lands on: positional reads and
// writes plus the current size. Implementations must be safe for concurrent
// ReadAt calls (restore fans chunks across workers); WriteAt is only ever
// called from the single writer goroutine.
type Medium interface {
	io.ReaderAt
	io.WriterAt
	Size() int64
}

// ErrTransient marks a medium fault that a retry may clear; the pipelined
// writer retries these with capped exponential backoff.
var ErrTransient = errors.New("ckpt: transient medium fault")

// MemMedium is an in-memory Medium, the default for tests and simulations.
type MemMedium struct {
	mu  sync.RWMutex
	buf []byte
}

// NewMemMedium returns an empty in-memory medium.
func NewMemMedium() *MemMedium { return &MemMedium{} }

// Size returns the current high-water mark.
func (m *MemMedium) Size() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return int64(len(m.buf))
}

// Bytes returns the stored bytes. The slice aliases the medium; callers
// must not write through it while the medium is in use.
func (m *MemMedium) Bytes() []byte {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.buf
}

// WriteAt stores p at off, growing the medium as needed.
func (m *MemMedium) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("ckpt: negative offset %d", off)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if end := off + int64(len(p)); end > int64(len(m.buf)) {
		grown := make([]byte, end)
		copy(grown, m.buf)
		m.buf = grown
	}
	copy(m.buf[off:], p)
	return len(p), nil
}

// ReadAt fills p from off.
func (m *MemMedium) ReadAt(p []byte, off int64) (int, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if off < 0 || off > int64(len(m.buf)) {
		return 0, fmt.Errorf("ckpt: offset %d outside medium of %d bytes", off, len(m.buf))
	}
	n := copy(p, m.buf[off:])
	if n < len(p) {
		return n, io.ErrUnexpectedEOF
	}
	return n, nil
}

// Corrupt flips one bit at off — a test hook for persistent bit rot.
func (m *MemMedium) Corrupt(off int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if off >= 0 && off < int64(len(m.buf)) {
		m.buf[off] ^= 0x40
	}
}

// FileMedium is a Medium over an operating-system file.
type FileMedium struct {
	f *os.File
}

// CreateFileMedium creates (or truncates) path for writing a new set.
func CreateFileMedium(path string) (*FileMedium, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &FileMedium{f: f}, nil
}

// OpenFileMedium opens an existing set read-only.
func OpenFileMedium(path string) (*FileMedium, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return &FileMedium{f: f}, nil
}

// Size stats the underlying file.
func (m *FileMedium) Size() int64 {
	fi, err := m.f.Stat()
	if err != nil {
		return 0
	}
	return fi.Size()
}

// WriteAt forwards to the file.
func (m *FileMedium) WriteAt(p []byte, off int64) (int, error) { return m.f.WriteAt(p, off) }

// ReadAt forwards to the file.
func (m *FileMedium) ReadAt(p []byte, off int64) (int, error) { return m.f.ReadAt(p, off) }

// Close closes the underlying file.
func (m *FileMedium) Close() error { return m.f.Close() }

// FaultProfile configures a FaultyMedium. All probabilities are per call.
type FaultProfile struct {
	// WriteErrProb: WriteAt fails entirely with ErrTransient.
	WriteErrProb float64
	// ShortWriteProb: WriteAt persists only a prefix and reports
	// ErrTransient, so the writer must resume the tail.
	ShortWriteProb float64
	// ReadCorruptProb: the FIRST ReadAt covering an offset returns bytes
	// with one bit flipped; re-reads of the same offset are clean. This is
	// the transient-corruption model that makes "re-read only corrupted
	// chunks" observable.
	ReadCorruptProb float64
	// ReadErrProb: ReadAt fails with ErrTransient.
	ReadErrProb float64
}

// FaultyMedium wraps a Medium with deterministic seeded transient faults.
// Safe for concurrent use (a mutex serializes the injector).
type FaultyMedium struct {
	mu        sync.Mutex
	inner     Medium
	inj       *netsim.Injector
	prof      FaultProfile
	corrupted map[int64]bool // offsets already served one corrupted read
}

// NewFaultyMedium wraps inner with the profile, seeded deterministically.
func NewFaultyMedium(inner Medium, seed int64, prof FaultProfile) *FaultyMedium {
	return &FaultyMedium{
		inner:     inner,
		inj:       netsim.NewInjector(seed),
		prof:      prof,
		corrupted: make(map[int64]bool),
	}
}

// Size forwards to the wrapped medium.
func (m *FaultyMedium) Size() int64 { return m.inner.Size() }

// WriteAt may fail transiently or persist only a prefix.
func (m *FaultyMedium) WriteAt(p []byte, off int64) (int, error) {
	m.mu.Lock()
	writeErr := m.inj.Hit(m.prof.WriteErrProb)
	short := !writeErr && len(p) > 1 && m.inj.Hit(m.prof.ShortWriteProb)
	frac := 0.0
	if short {
		frac = 0.1 + 0.8*m.inj.Uniform()
	}
	m.mu.Unlock()
	if writeErr {
		return 0, fmt.Errorf("%w: write at %d", ErrTransient, off)
	}
	if short {
		n := int(frac * float64(len(p)))
		if n < 1 {
			n = 1
		}
		if n >= len(p) {
			n = len(p) - 1
		}
		wrote, err := m.inner.WriteAt(p[:n], off)
		if err != nil {
			return wrote, err
		}
		return wrote, fmt.Errorf("%w: short write at %d (%d of %d bytes)",
			ErrTransient, off, wrote, len(p))
	}
	return m.inner.WriteAt(p, off)
}

// ReadAt may fail transiently or corrupt the first read of a region.
func (m *FaultyMedium) ReadAt(p []byte, off int64) (int, error) {
	m.mu.Lock()
	readErr := m.inj.Hit(m.prof.ReadErrProb)
	corrupt := !readErr && len(p) > 0 && !m.corrupted[off] && m.inj.Hit(m.prof.ReadCorruptProb)
	if corrupt {
		m.corrupted[off] = true
	}
	m.mu.Unlock()
	if readErr {
		return 0, fmt.Errorf("%w: read at %d", ErrTransient, off)
	}
	n, err := m.inner.ReadAt(p, off)
	if corrupt && n > 0 {
		p[n/2] ^= 0x04
	}
	return n, err
}
