package ckpt

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"reflect"
	"testing"
)

// restoreFloats flattens a Restored into field-major [][]float32 for exact
// comparison between a clean restore and a reconstructed one.
func restoreFloats(r *Restored) [][][]float32 {
	out := make([][][]float32, len(r.Fields))
	for fi := range r.Fields {
		out[fi] = r.Fields[fi].Data
	}
	return out
}

func TestParityWriteByteIdenticalAcrossWorkerCounts(t *testing.T) {
	set := testSet(4)
	var ref []byte
	var refParity []ChunkInfo
	for _, workers := range []int{1, 2, 4, 8} {
		med := NewMemMedium()
		res := mustWrite(t, med, set, WriteOptions{Workers: workers, ParityRanks: 2})
		if res.ParityRanks != 2 || res.ParityBytes <= 0 {
			t.Fatalf("workers=%d: parity result %+v", workers, res)
		}
		if got := len(res.Manifest.ParityChunks); got != 2*len(set.Fields) {
			t.Fatalf("workers=%d: %d parity chunks, want %d", workers, got, 2*len(set.Fields))
		}
		if ref == nil {
			ref = append([]byte(nil), med.Bytes()...)
			refParity = append([]ChunkInfo(nil), res.Manifest.ParityChunks...)
			continue
		}
		if !bytes.Equal(ref, med.Bytes()) {
			t.Fatalf("workers=%d: v2 file bytes differ from workers=1", workers)
		}
		for i, c := range res.Manifest.ParityChunks {
			if c != refParity[i] {
				t.Fatalf("workers=%d: parity chunk %d differs: %+v vs %+v",
					workers, i, c, refParity[i])
			}
		}
	}
}

func TestParityOverheadAccounting(t *testing.T) {
	set := testSet(4)
	med := NewMemMedium()
	res := mustWrite(t, med, set, WriteOptions{Workers: 2, ParityRanks: 2})
	if res.ParityOverhead() <= 0 {
		t.Fatalf("ParityOverhead = %g, want > 0", res.ParityOverhead())
	}
	if res.Manifest.ParityBytes() != res.ParityBytes {
		t.Fatalf("manifest parity bytes %d != result %d",
			res.Manifest.ParityBytes(), res.ParityBytes)
	}
	// Parity shards are stripe-length: m shards of the field's max chunk.
	for fi := range set.Fields {
		var maxData int64
		for r := 0; r < set.Ranks; r++ {
			if s := res.Manifest.Chunk(r, fi).Size; s > maxData {
				maxData = s
			}
		}
		for j := 0; j < 2; j++ {
			if got := res.Manifest.ParityChunk(fi, j).Size; got != maxData {
				t.Fatalf("field %d parity %d size %d, want stripe len %d", fi, j, got, maxData)
			}
		}
	}
}

// TestParityReconstructsErasedRanks is the tentpole property test: for a
// range of geometries, erase up to m whole ranks (every field chunk of the
// rank persistently corrupted) and demand a STRICT restore — under wire
// faults on the read mount — that is element-identical to a clean restore,
// with the report attributing the rebuilt chunks to reconstruction.
func TestParityReconstructsErasedRanks(t *testing.T) {
	cases := []struct {
		ranks, parity int
		erase         []int
	}{
		{3, 1, []int{1}},
		{4, 2, []int{0, 3}},
		{5, 2, []int{2}},
		{6, 3, []int{0, 2, 5}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("k%d_m%d_lose%d", tc.ranks, tc.parity, len(tc.erase)), func(t *testing.T) {
			set := testSet(tc.ranks)
			med := NewMemMedium()
			res := mustWrite(t, med, set, WriteOptions{Workers: 2, ParityRanks: tc.parity})

			clean, err := Restore(med, RestoreOptions{Workers: 2})
			if err != nil {
				t.Fatalf("clean restore: %v", err)
			}

			for _, r := range tc.erase {
				for fi := range set.Fields {
					c := res.Manifest.Chunk(r, fi)
					med.Corrupt(c.Offset + c.Size/2)
				}
			}
			// The seeded wire-fault injector is documented single-threaded,
			// so the faulted restore runs one worker; a clean-mount restore
			// below re-checks the same outcome at higher worker counts.
			ropts := RestoreOptions{Workers: 1, Retry: RetryPolicy{MaxAttempts: 2}}
			ropts.Mount = faultyNFSMount(17)
			got, err := Restore(med, ropts)
			if err != nil {
				t.Fatalf("strict restore with %d erased ranks: %v", len(tc.erase), err)
			}
			rep := got.Report
			if len(rep.Failed) != 0 || len(rep.MissingRanks) != 0 {
				t.Fatalf("reconstructed restore still reports failures: %+v", rep)
			}
			wantRebuilt := len(tc.erase) * len(set.Fields)
			if rep.ChunksReconstructed != wantRebuilt {
				t.Fatalf("ChunksReconstructed = %d, want %d", rep.ChunksReconstructed, wantRebuilt)
			}
			wantRanks := sortedDedupInts(append([]int(nil), tc.erase...))
			if !reflect.DeepEqual(rep.ReconstructedRanks, wantRanks) {
				t.Fatalf("ReconstructedRanks = %v, want %v", rep.ReconstructedRanks, wantRanks)
			}
			if rep.ParityChunksRead == 0 {
				t.Fatal("reconstruction read no parity chunks")
			}
			// Reconstruction is byte-identical, so the decoded floats must be
			// exactly — not just within error bound — what a clean restore gives.
			if !reflect.DeepEqual(restoreFloats(clean), restoreFloats(got)) {
				t.Fatal("reconstructed restore differs from clean restore")
			}

			// Same erasures, clean mount, more workers: identical outcome.
			for _, workers := range []int{2, 4} {
				gw, err := Restore(med, RestoreOptions{Workers: workers,
					Retry: RetryPolicy{MaxAttempts: 2}})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if gw.Report.ChunksReconstructed != wantRebuilt ||
					!reflect.DeepEqual(gw.Report.ReconstructedRanks, wantRanks) {
					t.Fatalf("workers=%d: report %+v", workers, gw.Report)
				}
				if !reflect.DeepEqual(restoreFloats(clean), restoreFloats(gw)) {
					t.Fatalf("workers=%d: restore differs from clean", workers)
				}
			}
		})
	}
}

func TestParityBeyondBudgetDegradesToPartial(t *testing.T) {
	set := testSet(5)
	med := NewMemMedium()
	res := mustWrite(t, med, set, WriteOptions{Workers: 2, ParityRanks: 2})
	erase := []int{0, 2, 4} // m+1 ranks: beyond the erasure budget
	for _, r := range erase {
		for fi := range set.Fields {
			c := res.Manifest.Chunk(r, fi)
			med.Corrupt(c.Offset + 1)
		}
	}
	ropts := RestoreOptions{Workers: 2, Retry: RetryPolicy{MaxAttempts: 2}}
	if _, err := Restore(med, ropts); err == nil {
		t.Fatal("strict restore accepted > m erased ranks")
	}
	ropts.AllowPartial = true
	got, err := Restore(med, ropts)
	if err != nil {
		t.Fatalf("partial restore: %v", err)
	}
	rep := got.Report
	if rep.ChunksReconstructed != 0 {
		t.Fatalf("reconstructed %d chunks with > m erasures", rep.ChunksReconstructed)
	}
	if !reflect.DeepEqual(rep.MissingRanks, erase) {
		t.Fatalf("MissingRanks = %v, want %v", rep.MissingRanks, erase)
	}
	if len(rep.Failed) != len(erase)*len(set.Fields) {
		t.Fatalf("Failed = %+v", rep.Failed)
	}
	for _, f := range rep.Failed {
		if !errors.Is(f.Err, ErrCorrupt) {
			t.Fatalf("failure not ErrCorrupt: %+v", f)
		}
	}
}

func TestParityShardLossConsumesBudget(t *testing.T) {
	set := testSet(4)
	med := NewMemMedium()
	res := mustWrite(t, med, set, WriteOptions{Workers: 2, ParityRanks: 2})
	// Lose one data rank AND one parity shard of field 0: one parity shard
	// remains, which is exactly enough for the single data erasure.
	c := res.Manifest.Chunk(1, 0)
	med.Corrupt(c.Offset + 1)
	p := res.Manifest.ParityChunk(0, 0)
	med.Corrupt(p.Offset + 1)

	got, err := Restore(med, RestoreOptions{Workers: 2, Retry: RetryPolicy{MaxAttempts: 2}})
	if err != nil {
		t.Fatalf("strict restore: %v", err)
	}
	rep := got.Report
	if rep.ChunksReconstructed != 1 {
		t.Fatalf("ChunksReconstructed = %d, want 1", rep.ChunksReconstructed)
	}
	if len(rep.ParityFailed) != 1 || rep.ParityFailed[0].Rank != set.Ranks {
		t.Fatalf("ParityFailed = %+v", rep.ParityFailed)
	}
	checkRestored(t, set, got)
}

// TestReportDeterministicAcrossWorkerCounts pins the report contract: the
// Failed, MissingRanks and ReconstructedRanks lists come out sorted and
// deduplicated whatever the worker count.
func TestReportDeterministicAcrossWorkerCounts(t *testing.T) {
	set := testSet(6)
	med := NewMemMedium()
	res := mustWrite(t, med, set, WriteOptions{Workers: 2})
	// Corrupt a scattered pattern: ranks 5, 1, 3 (deliberately unsorted).
	for _, r := range []int{5, 1, 3} {
		for fi := range set.Fields {
			c := res.Manifest.Chunk(r, fi)
			med.Corrupt(c.Offset + 2)
		}
	}
	type flatErr struct {
		Rank, Field int
		Msg         string
	}
	var refFailed []flatErr
	var refMissing []int
	for workers := 1; workers <= 8; workers++ {
		got, err := Restore(med, RestoreOptions{Workers: workers, AllowPartial: true,
			Retry: RetryPolicy{MaxAttempts: 2}})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		rep := got.Report
		var failed []flatErr
		for _, f := range rep.Failed {
			failed = append(failed, flatErr{f.Rank, f.Field, f.Err.Error()})
		}
		for i := 1; i < len(failed); i++ {
			a, b := failed[i-1], failed[i]
			if a.Rank > b.Rank || (a.Rank == b.Rank && a.Field >= b.Field) {
				t.Fatalf("workers=%d: Failed not strictly sorted: %+v", workers, rep.Failed)
			}
		}
		if workers == 1 {
			refFailed, refMissing = failed, rep.MissingRanks
			continue
		}
		if !reflect.DeepEqual(failed, refFailed) {
			t.Fatalf("workers=%d: Failed differs from workers=1:\n%+v\nvs\n%+v",
				workers, failed, refFailed)
		}
		if !reflect.DeepEqual(rep.MissingRanks, refMissing) {
			t.Fatalf("workers=%d: MissingRanks %v vs %v", workers, rep.MissingRanks, refMissing)
		}
	}
}

func TestVerifyScansParityAndReportsReconstructability(t *testing.T) {
	set := testSet(4)
	med := NewMemMedium()
	res := mustWrite(t, med, set, WriteOptions{Workers: 2, ParityRanks: 2})

	rep, err := Verify(med, true, 2)
	if err != nil {
		t.Fatalf("Verify clean: %v", err)
	}
	if rep.ParityChunks != 2*len(set.Fields) || rep.ParityOK != rep.ParityChunks {
		t.Fatalf("clean parity scan %+v", rep)
	}
	if !rep.Reconstructable {
		t.Fatal("clean set not reconstructable")
	}

	// One data chunk + one parity shard of field 0 lost: still within budget.
	med.Corrupt(res.Manifest.Chunk(0, 0).Offset + 1)
	med.Corrupt(res.Manifest.ParityChunk(0, 1).Offset + 1)
	rep, err = Verify(med, false, 2)
	if err != nil {
		t.Fatalf("Verify damaged: %v", err)
	}
	if len(rep.Failed) != 1 || len(rep.ParityFailed) != 1 {
		t.Fatalf("damaged scan %+v", rep)
	}
	if !rep.Reconstructable {
		t.Fatal("within-budget damage reported unreconstructable")
	}

	// A third stripe member of field 0 gone: budget exceeded.
	med.Corrupt(res.Manifest.Chunk(2, 0).Offset + 1)
	med.Corrupt(res.Manifest.Chunk(3, 0).Offset + 1)
	rep, err = Verify(med, false, 2)
	if err != nil {
		t.Fatalf("Verify over budget: %v", err)
	}
	if rep.Reconstructable {
		t.Fatal("over-budget damage reported reconstructable")
	}
}

func TestParityV1SetsUnchanged(t *testing.T) {
	set := testSet(3)
	med := NewMemMedium()
	res := mustWrite(t, med, set, WriteOptions{Workers: 2})
	if res.ParityRanks != 0 || res.ParityBytes != 0 || res.ParityOverhead() != 0 {
		t.Fatalf("parity fields set on v1 write: %+v", res)
	}
	if res.Manifest.formatVersion() != version {
		t.Fatalf("formatVersion = %d, want v1", res.Manifest.formatVersion())
	}
	m, err := ReadManifest(med)
	if err != nil {
		t.Fatal(err)
	}
	if m.ParityRanks != 0 || len(m.ParityChunks) != 0 {
		t.Fatalf("v1 manifest grew parity entries: %+v", m)
	}
	rep, err := Verify(med, false, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ParityChunks != 0 || !rep.Reconstructable {
		t.Fatalf("v1 verify %+v", rep)
	}
}

func TestCampaignPlanItemizesParityWrite(t *testing.T) {
	med := NewMemMedium()
	res := mustWrite(t, med, testSet(4), WriteOptions{Workers: 2, ParityRanks: 2})
	for _, withRestore := range []bool{false, true} {
		pl, err := res.CampaignPlan(CampaignOptions{
			Iterations: 2, ComputeSeconds: 5, WithRestore: withRestore})
		if err != nil {
			t.Fatalf("CampaignPlan(restore=%v): %v", withRestore, err)
		}
		found := false
		for _, p := range pl.Phases {
			if p.Name == "checkpoint-parity-write" {
				found = true
				if p.Workload.MemBytes <= 0 || p.Workload.StallSeconds <= 0 {
					t.Fatalf("parity phase carries no transfer: %+v", p)
				}
			}
		}
		if !found {
			t.Fatalf("restore=%v: no checkpoint-parity-write phase in %+v", withRestore, pl)
		}
		cmp, err := res.EnergyReport(CampaignOptions{
			Iterations: 2, ComputeSeconds: 5, WithRestore: withRestore})
		if err != nil {
			t.Fatal(err)
		}
		if cmp.EnergySavedPct() <= 0 {
			t.Fatalf("restore=%v: parity campaign saved %.3f%%, want > 0",
				withRestore, cmp.EnergySavedPct())
		}
	}
}

func TestParityCampaignCostsMoreThanPlain(t *testing.T) {
	set := testSet(4)
	plain := mustWrite(t, NewMemMedium(), set, WriteOptions{Workers: 2})
	par := mustWrite(t, NewMemMedium(), set, WriteOptions{Workers: 2, ParityRanks: 2})
	opts := CampaignOptions{Iterations: 3, ComputeSeconds: 5}
	cmpPlain, err := plain.EnergyReport(opts)
	if err != nil {
		t.Fatal(err)
	}
	cmpPar, err := par.EnergyReport(opts)
	if err != nil {
		t.Fatal(err)
	}
	if cmpPar.Tuned.Joules <= cmpPlain.Tuned.Joules {
		t.Fatalf("parity campaign (%.1f J) not dearer than plain (%.1f J)",
			cmpPar.Tuned.Joules, cmpPlain.Tuned.Joules)
	}
}

func TestParityEnergyBreakEven(t *testing.T) {
	med := NewMemMedium()
	res := mustWrite(t, med, testSet(4), WriteOptions{Workers: 2, ParityRanks: 2})
	pe, err := res.ParityEnergy(CampaignOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if pe.ParityJoules <= 0 || pe.ParitySeconds <= 0 {
		t.Fatalf("parity premium not positive: %+v", pe)
	}
	if pe.ReconstructJoules <= 0 || pe.RedumpJoules <= 0 {
		t.Fatalf("recovery legs not positive: %+v", pe)
	}
	// Reconstruction reads m stripes; a redump recompresses AND rewrites a
	// rank's share — compression dominates, so reconstruction must win.
	if pe.ReconstructJoules >= pe.RedumpJoules {
		t.Fatalf("reconstruct (%.2f J) not cheaper than redump (%.2f J)",
			pe.ReconstructJoules, pe.RedumpJoules)
	}
	if !(pe.BreakEvenLossProb > 0) || math.IsInf(pe.BreakEvenLossProb, 1) {
		t.Fatalf("break-even = %v, want finite positive", pe.BreakEvenLossProb)
	}

	// A v1 result has no premium and nothing to break even.
	plain := mustWrite(t, NewMemMedium(), testSet(4), WriteOptions{Workers: 2})
	pe0, err := plain.ParityEnergy(CampaignOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if pe0.ParityJoules != 0 || !math.IsInf(pe0.BreakEvenLossProb, 1) {
		t.Fatalf("v1 parity economics %+v", pe0)
	}
}

func TestParityRanksValidation(t *testing.T) {
	set := testSet(2)
	if _, err := Write(NewMemMedium(), set, WriteOptions{ParityRanks: maxParityRanks + 1}); err == nil {
		t.Fatal("accepted ParityRanks beyond cap")
	}
	if _, err := Write(NewMemMedium(), set, WriteOptions{ParityRanks: -1}); err == nil {
		t.Fatal("accepted negative ParityRanks")
	}
}
