package ckpt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"lcpio/internal/container"
	"lcpio/internal/dedup"
	"lcpio/internal/ec"
	"lcpio/internal/obs"
	"lcpio/internal/wire"
)

// Delta checkpoints (format v3).
//
// A delta set stores only content the base chain does not already hold.
// Each (rank, field) payload is content-defined-chunked (dedup.Split) in
// its ORIGINAL float32 domain; every chunk is then classified:
//
//  1. exact: its digest is present in the base's index of RESTORED
//     content — the chunk becomes a by-reference entry to that location;
//  2. unchanged-within-bound: every value of the chunk is within the
//     field's error bound of the base's restored value at the same
//     position — exactly the lossy codec's contract, so serving the base's
//     bytes for this chunk is as correct as recompressing it. The entry
//     references the same position and carries the digest of the base's
//     restored bytes there, which restore checks byte-exactly;
//  3. changed: the chunk is compressed on its own (a 1-D container blob)
//     and stored, deduplicated against identical chunks already committed
//     in THIS set (intra-set sharing via refcounts).
//
// Classification happens in the workers; which chunks become new blobs is
// decided in the in-order drain loop, so blob IDs, offsets, refcounts and
// the entire file are byte-identical at any worker count.
//
// Matching restored-domain content (not as-stored compressed bytes) is the
// load-bearing choice: predictor-based codecs like SZ cascade any edit
// into the compressed representation of later, unchanged values, so
// as-stored bytes are unstable under churn — restored values are the
// stable contract surface the codec actually guarantees.

// Base is a restored checkpoint set prepared for delta writes against it:
// the restored content of every (rank, field), a digest index over its
// content-defined chunks, and the manifest pin a delta set will record.
type Base struct {
	// Manifest is the base set's manifest; Pin authenticates it (CRC32C of
	// its canonical encoding) so restore can refuse a swapped base.
	Manifest *Manifest
	Pin      uint32

	params dedup.Params
	// raw holds the restored little-endian float32 bytes per rank-major
	// (rank, field) stream.
	raw [][]byte
	// index maps digests of the base's content-defined chunks (over
	// restored bytes) to their locations.
	index *dedup.Index
}

// DedupParams returns the chunking geometry the base was indexed with —
// the geometry Write will use for deltas against it.
func (b *Base) DedupParams() dedup.Params { return b.params }

// OpenBase restores the set on med (resolving its own base chain through
// the chain media, immediate base first) and indexes its restored content
// for delta writes. The dedup params become the delta set's chunking
// geometry; zero values take the package defaults, alignment is forced to
// whole float32s.
func OpenBase(med Medium, chain []Medium, p dedup.Params, opts RestoreOptions) (*Base, error) {
	p.Align = dedupAlign
	p = p.Normalized()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	opts.AllowPartial = false
	opts.Bases = chain
	res, err := Restore(med, opts)
	if err != nil {
		return nil, fmt.Errorf("%w: opening base: %v", ErrBase, err)
	}
	if res.Manifest.ChainDepth+1 > maxChainDepth {
		return nil, fmt.Errorf("ckpt: base chain depth %d would exceed cap %d",
			res.Manifest.ChainDepth+1, maxChainDepth)
	}
	b := &Base{
		Manifest: res.Manifest,
		Pin:      Digest(res.Manifest.encode()),
		params:   p,
		raw:      make([][]byte, res.Manifest.Ranks*len(res.Manifest.Fields)),
		index:    dedup.NewIndex(),
	}
	nFields := len(res.Manifest.Fields)
	for fi := range res.Fields {
		for r, data := range res.Fields[fi].Data {
			s := r*nFields + fi
			b.raw[s] = f32le(data)
			prev := 0
			for _, cut := range dedup.Split(b.raw[s], p) {
				b.index.Add(dedup.Sum(b.raw[s][prev:cut]), dedup.Location{
					Rank: r, Field: fi, RawOff: int64(prev), RawLen: int64(cut - prev),
				})
				prev = cut
			}
		}
	}
	return b, nil
}

// f32le serializes float32s as little-endian bytes — the byte domain the
// chunker, digests, and base references all live in.
func f32le(data []float32) []byte {
	b := make([]byte, len(data)*4)
	for i, v := range data {
		binary.LittleEndian.PutUint32(b[i*4:], math.Float32bits(v))
	}
	return b
}

// withinBound reports whether every value of cur is within bound of the
// base's restored value at the same position (baseRaw in LE float32
// bytes). NaNs never match.
func withinBound(cur []float32, baseRaw []byte, bound float64) bool {
	for i, v := range cur {
		bv := math.Float32frombits(binary.LittleEndian.Uint32(baseRaw[i*4:]))
		d := float64(v) - float64(bv)
		if !(d <= bound && d >= -bound) {
			return false
		}
	}
	return true
}

// deltaEntry is one manifest-bound run travelling from a worker to the
// drain loop: either a resolved base reference or a compressed local
// candidate whose fate (new blob vs intra-set share) the drain decides.
// A run covers one or more consecutive content-defined chunks of equal
// classification — merging is a pure encoding win (one container stream,
// one manifest entry) and changes nothing about chunk-level matching.
type deltaEntry struct {
	rawLen int
	chunks int      // content-defined chunks merged into this run
	ref    ChunkRef // Blob == -1: base reference, ready for the manifest
	local  bool
	blob   []byte       // compressed run (local candidates)
	digest dedup.Digest // original-bytes digest (intra-set dedup key)
}

type deltaDone struct {
	idx     int
	entries []deltaEntry
	err     error
	availAt float64
}

// maxRefRunLen caps merged base-reference runs so RawLen stays well inside
// its uint32 wire field.
const maxRefRunLen = 1 << 30

// classifyStream chunks one (rank, field) payload, classifies every chunk
// against the base, merges runs, and compresses local runs — all here in
// the worker, so only the dedup decision is left for the drain loop.
func classifyStream(set *Set, base *Base, idx int, packer *container.Packer) ([]deltaEntry, error) {
	nFields := len(set.Fields)
	rank, fi := idx/nFields, idx%nFields
	f := &set.Fields[fi]
	raw := f32le(f.Data[rank])
	baseRaw := base.raw[idx]
	cuts := dedup.Split(raw, base.params)

	// Per-chunk classification: local, or a reference into some base
	// stream's restored bytes.
	type chunkClass struct {
		start, end int
		local      bool
		baseStream int
		baseOff    int64
	}
	classes := make([]chunkClass, 0, len(cuts))
	prev := 0
	for _, cut := range cuts {
		n := cut - prev
		if loc, ok := base.index.Lookup(dedup.Sum(raw[prev:cut])); ok && loc.RawLen == int64(n) {
			// Exact content match somewhere in the base's restored data.
			classes = append(classes, chunkClass{prev, cut, false, loc.Rank*nFields + loc.Field, loc.RawOff})
		} else if withinBound(f.Data[rank][prev/4:cut/4], baseRaw[prev:cut], f.ErrorBound) {
			// Unchanged within the codec's contract: reference the base's
			// restored bytes at the same position.
			classes = append(classes, chunkClass{prev, cut, false, idx, int64(prev)})
		} else {
			classes = append(classes, chunkClass{prev, cut, true, 0, 0})
		}
		prev = cut
	}

	// Merge pass: consecutive local chunks become one compressed run;
	// consecutive references contiguous in the same base stream become one
	// spanning reference (digest over the whole base range).
	var entries []deltaEntry
	for i := 0; i < len(classes); {
		c := classes[i]
		j := i + 1
		if c.local {
			end := c.end
			for j < len(classes) && classes[j].local && classes[j].end-c.start <= dedup.MaxChunkSize {
				end = classes[j].end
				j++
			}
			blob, err := packer.Pack(f.Data[rank][c.start/4:end/4], []int{(end - c.start) / 4}, f.ErrorBound)
			if err != nil {
				return nil, err
			}
			entries = append(entries, deltaEntry{
				rawLen: end - c.start, chunks: j - i, local: true,
				blob: blob, digest: dedup.Sum(raw[c.start:end]),
			})
		} else {
			endOff := c.baseOff + int64(c.end-c.start)
			for j < len(classes) && !classes[j].local && classes[j].baseStream == c.baseStream &&
				classes[j].baseOff == endOff && endOff-c.baseOff < maxRefRunLen {
				endOff += int64(classes[j].end - classes[j].start)
				j++
			}
			n := int(endOff - c.baseOff)
			entries = append(entries, deltaEntry{rawLen: n, chunks: j - i, ref: ChunkRef{
				RawLen: n, Blob: -1, BaseRank: c.baseStream / nFields, BaseField: c.baseStream % nFields,
				BaseRawOff: c.baseOff, Digest: dedup.Sum(base.raw[c.baseStream][c.baseOff:endOff]),
			}})
		}
		i = j
	}
	return entries, nil
}

// writeDelta is Write's format-v3 path: the same pipelined scheduler, but
// workers chunk/hash/classify/compress and the in-order drain commits only
// content the base chain lacks.
func writeDelta(med Medium, set Set, opts WriteOptions) (*WriteResult, error) {
	base := opts.Base
	span := obs.Start("ckpt.write.delta")
	defer span.End()
	// Lanes 0..Workers-1 chunk/classify/compress; lane Workers is the
	// in-order drain on the caller's goroutine.
	pt := obs.StartPipeline("ckpt.delta_write", opts.Workers+1)
	defer pt.End()
	if err := sameGeometry(set.Ranks, setFieldInfos(set), base.Manifest); err != nil {
		return nil, fmt.Errorf("ckpt: delta against base %q: %w", base.Manifest.SetName, err)
	}
	if base.Manifest.ChainDepth+1 > maxChainDepth {
		return nil, fmt.Errorf("ckpt: base chain depth %d exceeds cap %d",
			base.Manifest.ChainDepth+1, maxChainDepth)
	}
	nFields := len(set.Fields)
	n := set.Ranks * nFields
	var coder *ec.Coder
	if opts.ParityRanks < 0 || opts.ParityRanks > maxParityRanks {
		return nil, fmt.Errorf("ckpt: parity ranks %d outside [0, %d]", opts.ParityRanks, maxParityRanks)
	}
	if opts.ParityRanks > 0 {
		var err error
		if coder, err = ec.New(set.Ranks, opts.ParityRanks); err != nil {
			return nil, err
		}
	}
	start := time.Now()

	sem := make(chan struct{}, opts.QueueDepth)
	tasks := make(chan int)
	results := make(chan deltaDone, opts.Workers)
	quit := make(chan struct{})
	var wg sync.WaitGroup
	go func() {
		defer close(tasks)
		for idx := 0; idx < n; idx++ {
			select {
			case sem <- struct{}{}:
			case <-quit:
				return
			}
			select {
			case tasks <- idx:
			case <-quit:
				return
			}
		}
	}()
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		wc := pt.Worker(w)
		go func() {
			defer wg.Done()
			packer, perr := container.NewPacker(set.Codec,
				container.Options{ChunkElems: opts.ChunkElems, Parallelism: 1})
			for idx := range tasks {
				wc.Run("classify_compress")
				d := deltaDone{idx: idx, err: perr}
				if perr == nil {
					d.entries, d.err = classifyStream(&set, base, idx, packer)
				}
				d.availAt = time.Since(start).Seconds()
				wc.WaitOutput()
				select {
				case results <- d:
				case <-quit:
					return
				}
				wc.WaitInput()
			}
		}()
	}

	p := base.params
	m := &Manifest{
		SetName:     set.Name,
		Meta:        set.Meta,
		Codec:       set.Codec,
		Ranks:       set.Ranks,
		Fields:      make([]FieldInfo, nFields),
		ParityRanks: opts.ParityRanks,
		BaseName:    base.Manifest.SetName,
		BasePin:     base.Pin,
		ChainDepth:  base.Manifest.ChainDepth + 1,
		DedupMin:    p.MinSize,
		DedupAvg:    p.AvgSize,
		DedupMax:    p.MaxSize,
		Entries:     make([][]ChunkRef, n),
	}
	for i, f := range set.Fields {
		m.Fields[i] = FieldInfo{Name: f.Name, Dims: append([]int(nil), f.Dims...), ErrorBound: f.ErrorBound}
	}

	res := &WriteResult{Manifest: m, Chunks: n, ParityRanks: opts.ParityRanks, BaseName: base.Manifest.SetName}
	var header [headerLen]byte
	wire.AppendUint32(wire.AppendUint32(header[:0], magic), version3)
	var fatal error
	wr := pt.Worker(opts.Workers)
	wr.Run("flush")
	if _, err := writeChunk(med, header[:], 0, opts, res); err != nil {
		fatal = fmt.Errorf("ckpt: writing header: %w", err)
	}
	wr.WaitInput()

	// In-order drain: base refs go straight to the manifest; local
	// candidates are dedup'd against blobs already committed in this set
	// (drain order = logical order, so the intra-set index — and therefore
	// blob IDs, offsets and refcounts — is worker-count independent).
	intra := make(map[dedup.Digest]int)
	pending := make(map[int]deltaDone, opts.QueueDepth)
	var writerClock, compressWall float64
	offset := int64(headerLen)
	nextWrite := 0
	var parity [][][]byte
	if coder != nil {
		parity = make([][][]byte, nFields)
	}
	for nextWrite < n && fatal == nil {
		d, open := <-results
		if !open {
			break
		}
		pending[d.idx] = d
		obs.Set("lcpio_ckpt_queue_depth", float64(len(pending)))
		for fatal == nil {
			d, ok := pending[nextWrite]
			if !ok {
				break
			}
			wr.Run("drain")
			delete(pending, nextWrite)
			if d.err != nil {
				fatal = fmt.Errorf("ckpt: stream %d (rank %d, field %q): %w",
					d.idx, d.idx/nFields, set.Fields[d.idx%nFields].Name, d.err)
				break
			}
			if d.availAt > compressWall {
				compressWall = d.availAt
			}
			rank, fi := nextWrite/nFields, nextWrite%nFields
			stream := make([]ChunkRef, 0, len(d.entries))
			var region []byte // this stream's newly committed blob bytes, for parity
			for _, e := range d.entries {
				if !e.local {
					stream = append(stream, e.ref)
					res.ChunksRef += e.chunks
					res.RefRawBytes += int64(e.rawLen)
					continue
				}
				if id, ok := intra[e.digest]; ok && m.Blobs[id].RawLen == e.rawLen {
					m.Blobs[id].Refs++
					stream = append(stream, ChunkRef{RawLen: e.rawLen, Blob: id})
					res.ChunksShared += e.chunks
					res.RefRawBytes += int64(e.rawLen)
					continue
				}
				id := len(m.Blobs)
				simSec, err := writeChunk(med, e.blob, offset, opts, res)
				if err != nil {
					fatal = fmt.Errorf("ckpt: blob %d: %w", id, err)
					break
				}
				res.SimWriteSeconds += simSec
				if d.availAt > writerClock {
					writerClock = d.availAt
				}
				writerClock += simSec
				m.Blobs = append(m.Blobs, BlobInfo{
					Offset: offset, Size: int64(len(e.blob)), CRC: Digest(e.blob),
					RawLen: e.rawLen, Digest: e.digest, Refs: 1, owner: nextWrite,
				})
				intra[e.digest] = id
				stream = append(stream, ChunkRef{RawLen: e.rawLen, Blob: id})
				region = append(region, e.blob...)
				offset += int64(len(e.blob))
				res.PayloadBytes += int64(len(e.blob))
				res.ChunksLocal += e.chunks
				res.LocalRawBytes += int64(e.rawLen)
				obs.Add("lcpio_ckpt_chunks_written_total", 1)
				obs.Add("lcpio_ckpt_bytes_written_total", int64(len(e.blob)))
			}
			if fatal != nil {
				break
			}
			m.Entries[nextWrite] = stream
			if coder != nil && len(region) > 0 {
				ecStart := time.Now()
				var err error
				parity[fi], err = coder.UpdateParity(parity[fi], rank, region, opts.Workers)
				if err != nil {
					fatal = fmt.Errorf("ckpt: parity fold of stream %d: %w", nextWrite, err)
					break
				}
				res.ECEncodeSeconds += time.Since(ecStart).Seconds()
			}
			<-sem
			nextWrite++
		}
		wr.WaitInput()
	}
	close(quit)
	wg.Wait()
	if fatal == nil && nextWrite < n {
		fatal = errors.New("ckpt: pipeline ended early") // defensive; unreachable
	}
	if fatal != nil {
		return nil, fatal
	}
	wr.Run("flush")

	if coder != nil {
		m.ParityChunks = make([]ChunkInfo, nFields*opts.ParityRanks)
		for fi := 0; fi < nFields; fi++ {
			shards := parity[fi]
			if shards == nil {
				// No rank of this field stored any local bytes: the stripe is
				// empty and so are its shards.
				shards = make([][]byte, opts.ParityRanks)
			}
			for j := 0; j < opts.ParityRanks; j++ {
				blob := shards[j]
				c := m.ParityChunk(fi, j)
				c.Rank, c.Field = set.Ranks+j, fi
				c.Offset = offset
				c.Size = int64(len(blob))
				c.CRC = Digest(blob)
				simSec, err := writeChunk(med, blob, offset, opts, res)
				if err != nil {
					return nil, fmt.Errorf("ckpt: parity shard (field %q, %d): %w",
						set.Fields[fi].Name, j, err)
				}
				res.SimWriteSeconds += simSec
				writerClock += simSec
				offset += c.Size
				res.ParityBytes += c.Size
				obs.Add("lcpio_ckpt_parity_bytes_written_total", c.Size)
			}
		}
	}

	mb := m.encode()
	simSec, err := writeChunk(med, mb, offset, opts, res)
	if err != nil {
		return nil, fmt.Errorf("ckpt: writing manifest: %w", err)
	}
	res.SimWriteSeconds += simSec
	writerClock += simSec
	var foot []byte
	foot = wire.AppendUint64(foot, uint64(offset))
	foot = wire.AppendUint64(foot, uint64(len(mb)))
	foot = wire.AppendUint32(foot, Digest(mb))
	foot = wire.AppendUint32(foot, magic)
	if _, err := writeChunk(med, foot, offset+int64(len(mb)), opts, res); err != nil {
		return nil, fmt.Errorf("ckpt: writing footer: %w", err)
	}

	res.Blobs = len(m.Blobs)
	res.FileBytes = offset + int64(len(mb)) + footerLen
	res.RawBytes = m.RawBytes()
	res.CompressWallSeconds = compressWall
	res.SimPipelinedSeconds = writerClock + res.ECEncodeSeconds
	res.SimSerialSeconds = compressWall + res.SimWriteSeconds + res.ECEncodeSeconds
	res.MeanRelEB = meanRelEB(set)
	obs.AddFloat("lcpio_ckpt_sim_write_seconds_total", res.SimWriteSeconds)
	obs.Set("lcpio_ckpt_queue_depth", 0)
	return res, nil
}

// setFieldInfos adapts a Set's fields for geometry comparison.
func setFieldInfos(set Set) []FieldInfo {
	fs := make([]FieldInfo, len(set.Fields))
	for i, f := range set.Fields {
		fs[i] = FieldInfo{Name: f.Name, Dims: f.Dims}
	}
	return fs
}

// sameGeometry checks that (ranks, fields) matches the base manifest's
// geometry: delta sets reference base content positionally, so rank count,
// field order/names and shapes must agree (error bounds may differ).
func sameGeometry(ranks int, fields []FieldInfo, bm *Manifest) error {
	if ranks != bm.Ranks {
		return fmt.Errorf("rank count %d != base %d", ranks, bm.Ranks)
	}
	if len(fields) != len(bm.Fields) {
		return fmt.Errorf("field count %d != base %d", len(fields), len(bm.Fields))
	}
	for i, f := range fields {
		bf := &bm.Fields[i]
		if f.Name != bf.Name {
			return fmt.Errorf("field %d is %q, base has %q", i, f.Name, bf.Name)
		}
		if !dimsEqual(f.Dims, bf.Dims) {
			return fmt.Errorf("field %q dims %v != base %v", f.Name, f.Dims, bf.Dims)
		}
	}
	return nil
}

// blobOutcome is the pass-1 result for one stored blob of a delta set.
type blobOutcome struct {
	data          []float32
	raw           []byte // verified compressed bytes; kept only on parity sets
	err           error
	reread        bool
	reconstructed bool
	retries       int64
	simSec        float64
}

// restoreDelta is Restore's format-v3 path: resolve the base chain, read
// and decode this set's blobs (reconstructing lost ones from parity), then
// assemble every (rank, field) payload from local blobs and digest-checked
// base references.
func restoreDelta(med Medium, m *Manifest, manifestRetries int64, opts RestoreOptions) (*Restored, error) {
	baseRes, err := resolveBase(m, opts.Bases, opts)
	if err != nil {
		return nil, err
	}
	nFields := len(m.Fields)
	out := &Restored{Manifest: m, Base: baseRes, Fields: make([]RestoredField, nFields)}
	rep := &out.Report
	rep.Retries = manifestRetries + baseRes.Report.Retries
	rep.SimReadSeconds = float64(1+manifestRetries)*
		opts.Mount.Read(int64(len(m.encode()))+footerLen).NetworkSeconds +
		baseRes.Report.SimReadSeconds

	// Pass 1: fetch, verify and decode every stored blob in parallel.
	keepRaw := m.ParityRanks > 0
	outcomes := make([]blobOutcome, len(m.Blobs))
	parallelOver(len(m.Blobs), opts.Workers, func(i int) {
		outcomes[i] = restoreBlob(med, m, i, opts, keepRaw)
	})
	for i := range outcomes {
		o := &outcomes[i]
		rep.SimReadSeconds += o.simSec
		rep.Retries += o.retries
		if o.reread {
			rep.ChunksReread++
			obs.Add("lcpio_ckpt_chunks_reread_total", 1)
		}
	}
	if keepRaw {
		reconstructBlobs(med, m, outcomes, opts, rep)
	}

	// Pass 2: assemble each (rank, field) payload. Base references copy
	// the base's restored values and are digest-checked byte-exactly —
	// a mismatch means the base's content is not what the writer saw.
	baseRaw := make([][]byte, m.Ranks*nFields)
	for fi := range baseRes.Fields {
		for r, data := range baseRes.Fields[fi].Data {
			baseRaw[r*nFields+fi] = f32le(data)
		}
	}
	for fi, f := range m.Fields {
		out.Fields[fi] = RestoredField{
			Name:       f.Name,
			Dims:       append([]int(nil), f.Dims...),
			ErrorBound: f.ErrorBound,
			Data:       make([][]float32, m.Ranks),
		}
	}
	streamData := make([][]float32, m.Ranks*nFields)
	streamErr := make([]error, m.Ranks*nFields)
	parallelOver(m.Ranks*nFields, opts.Workers, func(s int) {
		streamData[s], streamErr[s] = assembleStream(m, s, outcomes, baseRes, baseRaw[s])
	})

	rankOK := make([]bool, m.Ranks)
	for s := 0; s < m.Ranks*nFields; s++ {
		rank, fi := s/nFields, s%nFields
		if streamErr[s] != nil {
			rep.Failed = append(rep.Failed, ChunkError{Rank: rank, Field: fi, Err: streamErr[s]})
			continue
		}
		rep.ChunksOK++
		rankOK[rank] = true
		out.Fields[fi].Data[rank] = streamData[s]
	}
	for i := range outcomes {
		if outcomes[i].reconstructed {
			rep.ChunksReconstructed++
			rep.ReconstructedRanks = append(rep.ReconstructedRanks, m.Blobs[i].owner/nFields)
			obs.Add("lcpio_ckpt_chunks_reconstructed_total", 1)
		}
	}
	for r, ok := range rankOK {
		if !ok {
			rep.MissingRanks = append(rep.MissingRanks, r)
		}
	}
	rep.normalize()
	if len(rep.Failed) > 0 && !opts.AllowPartial {
		first := rep.Failed[0]
		return nil, fmt.Errorf("ckpt: %d of %d chunks unrecoverable (first: rank %d, field %d: %w)",
			len(rep.Failed), m.Ranks*nFields, first.Rank, first.Field, first.Err)
	}
	return out, nil
}

// resolveBase restores and authenticates the immediate base of a delta
// set: the chain must be provided, the restored base must match the
// recorded name + pin, sit one step shallower in the chain, and share the
// set's geometry. Every failure is an ErrBase kind — the delta set itself
// may be intact.
func resolveBase(m *Manifest, bases []Medium, opts RestoreOptions) (*Restored, error) {
	if len(bases) == 0 {
		return nil, fmt.Errorf("%w: delta set %q requires base %q", ErrBase, m.SetName, m.BaseName)
	}
	baseOpts := RestoreOptions{Workers: opts.Workers, Retry: opts.Retry, Mount: opts.Mount, Bases: bases[1:]}
	baseRes, err := Restore(bases[0], baseOpts)
	if err != nil {
		if errors.Is(err, ErrBase) {
			return nil, err
		}
		return nil, fmt.Errorf("%w: restoring base %q: %v", ErrBase, m.BaseName, err)
	}
	bm := baseRes.Manifest
	if bm.SetName != m.BaseName || Digest(bm.encode()) != m.BasePin {
		return nil, fmt.Errorf("%w: base %q fails pin check (wrong or modified base)", ErrBase, m.BaseName)
	}
	if bm.ChainDepth != m.ChainDepth-1 {
		return nil, fmt.Errorf("%w: base %q chain depth %d, expected %d",
			ErrBase, m.BaseName, bm.ChainDepth, m.ChainDepth-1)
	}
	if err := sameGeometry(m.Ranks, m.Fields, bm); err != nil {
		return nil, fmt.Errorf("%w: base %q geometry: %v", ErrBase, m.BaseName, err)
	}
	return baseRes, nil
}

// verifyDelta scans a delta set: every stored blob's CRC (and payload, in
// deep mode), the parity shards, and — when the base chain is provided —
// every base reference's content digest against the actually restored
// base. Without the chain, references go unchecked and BaseErr says so.
func verifyDelta(med Medium, m *Manifest, opts VerifyOptions, workers int) (*VerifyReport, error) {
	nFields := len(m.Fields)
	nBlobs := len(m.Blobs)
	rep := &VerifyReport{Chunks: nBlobs, ParityChunks: m.NumParityChunks()}
	errs := make([]error, nBlobs+rep.ParityChunks)
	parallelOver(len(errs), workers, func(i int) {
		var off, size int64
		var crc uint32
		if i < nBlobs {
			b := &m.Blobs[i]
			off, size, crc = b.Offset, b.Size, b.CRC
		} else {
			c := &m.ParityChunks[i-nBlobs]
			off, size, crc = c.Offset, c.Size, c.CRC
		}
		buf := make([]byte, size)
		if _, err := med.ReadAt(buf, off); err != nil {
			errs[i] = err
			return
		}
		if Digest(buf) != crc {
			errs[i] = fmt.Errorf("%w: chunk digest mismatch", ErrCorrupt)
			return
		}
		if opts.Deep && i < nBlobs {
			var o blobOutcome
			decodeBlob(&o, &m.Blobs[i], buf)
			errs[i] = o.err
		}
	})
	// Erasure budget accounting groups failed blobs by owning rank — the
	// stripe member parity can rebuild.
	lostRanks := make([]map[int]bool, nFields)
	for fi := range lostRanks {
		lostRanks[fi] = make(map[int]bool)
	}
	for i, err := range errs[:nBlobs] {
		owner := m.Blobs[i].owner
		rank, fi := owner/nFields, owner%nFields
		if err == nil {
			rep.ChunksOK++
		} else {
			rep.Failed = append(rep.Failed, ChunkError{Rank: rank, Field: fi, Err: err})
			lostRanks[fi][rank] = true
		}
	}
	lostParity := make([]int, nFields)
	for i, err := range errs[nBlobs:] {
		c := &m.ParityChunks[i]
		if err == nil {
			rep.ParityOK++
		} else {
			rep.ParityFailed = append(rep.ParityFailed, ChunkError{Rank: c.Rank, Field: c.Field, Err: err})
			lostParity[c.Field]++
		}
	}
	rep.Reconstructable = true
	for fi := range lostRanks {
		if n := len(lostRanks[fi]) + lostParity[fi]; n > 0 && (m.ParityRanks == 0 || n > m.ParityRanks) {
			rep.Reconstructable = false
		}
	}

	for _, stream := range m.Entries {
		for _, e := range stream {
			if !e.Local() {
				rep.RefChunks++
			}
		}
	}
	if rep.RefChunks == 0 {
		return rep, nil
	}
	if len(opts.Bases) == 0 {
		rep.BaseErr = fmt.Errorf("%w: base chain for %q not provided; %d references unchecked",
			ErrBase, m.BaseName, rep.RefChunks)
		return rep, nil
	}
	baseRes, err := resolveBase(m, opts.Bases, RestoreOptions{Workers: workers})
	if err != nil {
		rep.BaseErr = err
		return rep, nil
	}
	baseRaw := make([][]byte, m.Ranks*nFields)
	for fi := range baseRes.Fields {
		for r, data := range baseRes.Fields[fi].Data {
			baseRaw[r*nFields+fi] = f32le(data)
		}
	}
	for s, stream := range m.Entries {
		rank, fi := s/nFields, s%nFields
		for _, e := range stream {
			if e.Local() {
				continue
			}
			bb := baseRaw[e.BaseRank*nFields+e.BaseField][e.BaseRawOff : e.BaseRawOff+int64(e.RawLen)]
			if dedup.Sum(bb) != e.Digest {
				rep.Failed = append(rep.Failed, ChunkError{Rank: rank, Field: fi,
					Err: fmt.Errorf("%w: base content digest mismatch at (rank %d, field %d, off %d)",
						ErrBase, e.BaseRank, e.BaseField, e.BaseRawOff)})
				rep.Reconstructable = false // base damage is beyond this set's parity
				continue
			}
			rep.RefsOK++
		}
	}
	return rep, nil
}

// assembleStream rebuilds one (rank, field) payload from blob outcomes and
// digest-checked base references. baseRaw is the base's restored bytes for
// the SAME stream (positional refs are the common case; cross-stream exact
// refs re-serialize lazily).
func assembleStream(m *Manifest, s int, outcomes []blobOutcome, baseRes *Restored, baseRaw []byte) ([]float32, error) {
	nFields := len(m.Fields)
	fi := s % nFields
	out := make([]float32, m.Fields[fi].Elems())
	pos := 0
	for _, e := range m.Entries[s] {
		if e.Local() {
			o := &outcomes[e.Blob]
			if o.err != nil {
				return nil, o.err
			}
			copy(out[pos/4:], o.data)
			pos += e.RawLen
			continue
		}
		bs := e.BaseRank*nFields + e.BaseField
		var bb []byte
		var bf []float32
		bf = baseRes.Fields[e.BaseField].Data[e.BaseRank]
		if bs == s {
			bb = baseRaw[e.BaseRawOff : e.BaseRawOff+int64(e.RawLen)]
		} else {
			bb = f32le(bf[e.BaseRawOff/4 : (e.BaseRawOff+int64(e.RawLen))/4])
		}
		if dedup.Sum(bb) != e.Digest {
			return nil, fmt.Errorf("%w: base content digest mismatch at (rank %d, field %d, off %d)",
				ErrBase, e.BaseRank, e.BaseField, e.BaseRawOff)
		}
		copy(out[pos/4:], bf[e.BaseRawOff/4:(e.BaseRawOff+int64(e.RawLen))/4])
		pos += e.RawLen
	}
	return out, nil
}

// restoreBlob fetches, verifies and decodes one stored blob.
func restoreBlob(med Medium, m *Manifest, i int, opts RestoreOptions, keepRaw bool) blobOutcome {
	b := &m.Blobs[i]
	ci := ChunkInfo{Offset: b.Offset, Size: b.Size, CRC: b.CRC}
	co := readVerified(med, &ci, opts)
	o := blobOutcome{err: co.err, reread: co.reread, retries: co.retries, simSec: co.simSec}
	if o.err != nil {
		return o
	}
	decodeBlob(&o, b, co.raw)
	if keepRaw && o.err == nil {
		o.raw = co.raw
	}
	return o
}

// decodeBlob decompresses verified blob bytes and checks the length
// against the blob table, updating o in place.
func decodeBlob(o *blobOutcome, b *BlobInfo, blob []byte) {
	data, _, err := container.Unpack(blob, container.Options{Parallelism: 1})
	if err != nil {
		o.err = err
		return
	}
	if len(data) != b.RawLen/4 {
		o.err = fmt.Errorf("%w: blob decodes to %d elements, table says %d", ErrCorrupt, len(data), b.RawLen/4)
		return
	}
	o.data = data
}

// reconstructBlobs rebuilds failed blobs from the parity layer. The stripe
// member of (rank, field) is the concatenation of the blobs that stream
// owns, so reconstruction is region-wise: a field's stripe can be solved
// when the ranks with failed blobs number within the erasure budget, and
// each rebuilt blob must still match its table CRC before it is decoded.
func reconstructBlobs(med Medium, m *Manifest, outcomes []blobOutcome, opts RestoreOptions, rep *RestoreReport) {
	coder, err := ec.New(m.Ranks, m.ParityRanks)
	if err != nil {
		return // unreachable on a set that parsed; degrade gracefully
	}
	span := obs.Start("ckpt.reconstruct")
	defer span.End()
	nFields := len(m.Fields)
	owned := make([][]int, m.Ranks*nFields)
	for i := range m.Blobs {
		o := m.Blobs[i].owner
		owned[o] = append(owned[o], i)
	}
	for fi := 0; fi < nFields; fi++ {
		var failed []int // ranks with at least one failed owned blob
		for r := 0; r < m.Ranks; r++ {
			for _, bi := range owned[r*nFields+fi] {
				if outcomes[bi].err != nil {
					failed = append(failed, r)
					break
				}
			}
		}
		if len(failed) == 0 || len(failed) > m.ParityRanks {
			continue
		}
		stripeLen := int(m.ParityChunk(fi, 0).Size)
		shards := make([][]byte, m.Ranks+m.ParityRanks)
		avail := 0
		isFailed := make(map[int]bool, len(failed))
		for _, r := range failed {
			isFailed[r] = true
		}
		for r := 0; r < m.Ranks; r++ {
			if isFailed[r] {
				continue
			}
			region := make([]byte, stripeLen)
			off := 0
			for _, bi := range owned[r*nFields+fi] {
				copy(region[off:], outcomes[bi].raw)
				off += int(m.Blobs[bi].Size)
			}
			shards[r] = region
			avail++
		}
		for j := 0; j < m.ParityRanks && avail < m.Ranks; j++ {
			po := readVerified(med, m.ParityChunk(fi, j), opts)
			rep.SimReadSeconds += po.simSec
			rep.Retries += po.retries
			rep.ParityChunksRead++
			obs.Add("lcpio_ckpt_parity_chunks_read_total", 1)
			if po.err != nil {
				rep.ParityFailed = append(rep.ParityFailed,
					ChunkError{Rank: m.Ranks + j, Field: fi, Err: po.err})
				continue
			}
			shards[m.Ranks+j] = po.raw
			avail++
		}
		if avail < m.Ranks {
			continue
		}
		if err := coder.Reconstruct(shards, opts.Workers); err != nil {
			continue
		}
		for _, r := range failed {
			off := 0
			for _, bi := range owned[r*nFields+fi] {
				b := &m.Blobs[bi]
				blob := shards[r][off : off+int(b.Size)]
				off += int(b.Size)
				o := &outcomes[bi]
				if o.err == nil {
					continue
				}
				if Digest(blob) != b.CRC {
					o.err = fmt.Errorf("%w: reconstructed blob digest mismatch", ErrCorrupt)
					continue
				}
				o.err = nil
				decodeBlob(o, b, blob)
				if o.err == nil {
					o.reconstructed = true
					o.raw = blob
				}
			}
		}
	}
}

// parallelOver fans f across workers over [0, n).
func parallelOver(n, workers int, f func(int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	go func() {
		defer close(next)
		for i := 0; i < n; i++ {
			next <- i
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				f(i)
			}
		}()
	}
	wg.Wait()
}
