package ckpt

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"time"

	"lcpio/internal/compress"
	"lcpio/internal/container"
	"lcpio/internal/ec"
	"lcpio/internal/nfs"
	"lcpio/internal/obs"
	"lcpio/internal/retry"
	"lcpio/internal/stream"
	"lcpio/internal/wire"
)

// Field is one input field of a checkpoint set: every rank contributes an
// array of the same shape, compressed under the same absolute error bound.
type Field struct {
	Name       string
	Dims       []int
	ErrorBound float64
	// Data is indexed by rank.
	Data [][]float32
}

// Set is the input to Write.
type Set struct {
	Name  string
	Meta  string
	Codec string
	Ranks int
	// Fields must each carry Ranks data arrays matching Dims.
	Fields []Field
}

func (s Set) validate() error {
	if s.Ranks <= 0 || s.Ranks > maxRanks {
		return fmt.Errorf("ckpt: rank count %d outside [1,%d]", s.Ranks, maxRanks)
	}
	if len(s.Fields) == 0 || len(s.Fields) > maxFields {
		return fmt.Errorf("ckpt: field count %d outside [1,%d]", len(s.Fields), maxFields)
	}
	if s.Ranks*len(s.Fields) > maxChunks {
		return fmt.Errorf("ckpt: %d chunks exceed cap %d", s.Ranks*len(s.Fields), maxChunks)
	}
	if s.Codec == "" {
		return errors.New("ckpt: empty codec")
	}
	if _, err := compress.Lookup(s.Codec); err != nil {
		return err
	}
	if len(s.Name) > maxNameLen || len(s.Meta) > maxMetaLen {
		return errors.New("ckpt: set name or meta too long")
	}
	for fi, f := range s.Fields {
		if f.Name == "" || len(f.Name) > maxNameLen {
			return fmt.Errorf("ckpt: field %d has invalid name %q", fi, f.Name)
		}
		if len(f.Dims) == 0 || len(f.Dims) > maxDims {
			return fmt.Errorf("ckpt: field %q has %d dims", f.Name, len(f.Dims))
		}
		elems := 1
		for _, d := range f.Dims {
			if d <= 0 {
				return fmt.Errorf("ckpt: field %q has non-positive dim", f.Name)
			}
			elems *= d
		}
		if !(f.ErrorBound > 0) || math.IsInf(f.ErrorBound, 0) {
			return fmt.Errorf("ckpt: field %q has invalid error bound %v", f.Name, f.ErrorBound)
		}
		if len(f.Data) != s.Ranks {
			return fmt.Errorf("ckpt: field %q has %d rank arrays, want %d", f.Name, len(f.Data), s.Ranks)
		}
		for r, d := range f.Data {
			if len(d) != elems {
				return fmt.Errorf("ckpt: field %q rank %d has %d elements, dims %v imply %d",
					f.Name, r, len(d), f.Dims, elems)
			}
		}
	}
	return nil
}

// RetryPolicy caps the writer's retries of transient medium faults. It is a
// thin wrapper over the shared retry.Policy helper, which the nfs pipeline's
// retransmit waits price through too.
type RetryPolicy struct {
	// MaxAttempts per chunk (default 5).
	MaxAttempts int
	// BaseBackoff is the first retry's simulated delay (default 5 ms);
	// subsequent retries double it up to MaxBackoff (default 500 ms).
	BaseBackoff float64
	MaxBackoff  float64
}

// retryDefaults is the medium-fault backoff shape.
var retryDefaults = retry.Policy{MaxAttempts: 5, Base: 5e-3, Max: 500e-3}

// policy maps onto the shared helper, filling defaults.
func (r RetryPolicy) policy() retry.Policy {
	return retry.Policy{MaxAttempts: r.MaxAttempts, Base: r.BaseBackoff, Max: r.MaxBackoff}.
		Normalized(retryDefaults)
}

func (r RetryPolicy) normalized() RetryPolicy {
	p := r.policy()
	return RetryPolicy{MaxAttempts: p.MaxAttempts, BaseBackoff: p.Base, MaxBackoff: p.Max}
}

// backoff returns the capped exponential delay before retry `attempt`
// (1-based: the delay after the attempt'th failure).
func (r RetryPolicy) backoff(attempt int) float64 {
	return r.policy().Backoff(attempt)
}

// WriteOptions tunes the pipelined writer.
type WriteOptions struct {
	// Workers is the number of parallel chunk compressors (0 = GOMAXPROCS).
	Workers int
	// QueueDepth bounds chunks dispatched but not yet drained to the
	// medium — the pipeline's backpressure window (0 = 2×Workers, floor
	// Workers+1). Compression stalls when the writer falls this far
	// behind.
	QueueDepth int
	// ChunkElems is the container's per-slab target (0 = container
	// default).
	ChunkElems int
	// Mount is the simulated NFS write path (zero value = DefaultMount);
	// its FaultConfig injects wire-level faults.
	Mount nfs.Mount
	// Retry caps medium-fault retries.
	Retry RetryPolicy
	// ParityRanks appends this many Reed–Solomon parity shards to every
	// field's rank stripe (format v2), so Restore can reconstruct up to
	// this many lost or corrupt ranks per field instead of reporting them.
	// 0 (the default) writes format v1, byte-identical to before.
	ParityRanks int
	// Base switches Write to the delta path (format v3): only content the
	// base chain lacks is stored; unchanged chunks become by-reference
	// manifest entries (see OpenBase). nil writes a full set as before.
	// On a delta set the parity layer covers only locally-stored blobs.
	Base *Base
	// Advisor, when non-nil, is consulted once before the pipeline starts
	// and may retune codec, error bound, workers and parity for this set
	// (the online controller in internal/advisor implements it). A nil
	// advisor — or a zero tuning — leaves the write exactly as configured.
	Advisor WriteAdvisor
}

// WriteAdvisor retunes a write before it starts. Implementations get the
// set about to be written and the options as passed; they must not mutate
// either.
type WriteAdvisor interface {
	AdviseWrite(set *Set, opts WriteOptions) (WriteTuning, error)
}

// WriteTuning is the subset of write knobs an advisor may override. The
// zero value changes nothing.
type WriteTuning struct {
	// Workers overrides the parallel compressor count when > 0.
	Workers int
	// Codec replaces the set's codec when non-empty.
	Codec string
	// RelEB, when > 0, recomputes every field's absolute error bound as
	// this range-relative bound over the field's rank-0 array.
	RelEB float64
	// ParityRanks replaces WriteOptions.ParityRanks when SetParity is true
	// (the flag lets an advisor force parity OFF, which a plain zero could
	// not express).
	SetParity   bool
	ParityRanks int
}

// applyTuning folds an advisor's overrides into the set and options,
// revalidating anything the tuning touched.
func applyTuning(set Set, opts WriteOptions, tun WriteTuning) (Set, WriteOptions, error) {
	if tun.Workers > 0 {
		opts.Workers = tun.Workers
		opts.QueueDepth = 0 // re-derive the backpressure window
	}
	if tun.SetParity {
		opts.ParityRanks = tun.ParityRanks
	}
	if tun.Codec != "" && tun.Codec != set.Codec {
		if _, err := compress.Lookup(tun.Codec); err != nil {
			return set, opts, fmt.Errorf("ckpt: advisor codec: %w", err)
		}
		set.Codec = tun.Codec
	}
	if tun.RelEB > 0 {
		if math.IsInf(tun.RelEB, 0) {
			return set, opts, fmt.Errorf("ckpt: advisor relative bound %v", tun.RelEB)
		}
		fields := make([]Field, len(set.Fields))
		copy(fields, set.Fields)
		for i := range fields {
			if len(fields[i].Data) == 0 {
				continue
			}
			eb := compress.AbsBoundFromRelative(tun.RelEB, fields[i].Data[0])
			if eb > 0 {
				fields[i].ErrorBound = eb
			}
		}
		set.Fields = fields
	}
	return set, opts, nil
}

func (o WriteOptions) normalized() WriteOptions {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 2 * o.Workers
	}
	if o.QueueDepth <= o.Workers {
		o.QueueDepth = o.Workers + 1
	}
	o.Retry = o.Retry.normalized()
	return o
}

// WriteResult reports what one Write produced and measured.
type WriteResult struct {
	Manifest *Manifest
	// FileBytes is the total set size on the medium; PayloadBytes the
	// compressed chunk bytes; RawBytes the uncompressed input.
	FileBytes    int64
	RawBytes     int64
	PayloadBytes int64
	Chunks       int
	// ParityRanks and ParityBytes report the erasure-coding layer: m
	// parity shards per field stripe and their total on-medium size
	// (included in FileBytes, excluded from PayloadBytes).
	ParityRanks int
	ParityBytes int64
	// Retries counts chunk write attempts beyond the first (transient
	// medium faults); WireRetransmits and WireShortWrites aggregate the
	// simulated NFS pipeline's injected faults.
	Retries         int64
	WireRetransmits int64
	WireShortWrites int64
	// MeanRelEB is the payload-weighted mean range-relative error bound,
	// feeding the machine package's cycle model.
	MeanRelEB float64
	// ECEncodeSeconds is the real wall time spent folding chunks into the
	// parity accumulators (0 without parity).
	ECEncodeSeconds float64
	// Delta-write statistics (format v3; zero on full sets). BaseName names
	// the base set; Blobs counts stored chunks; ChunksLocal / ChunksRef /
	// ChunksShared split the content-defined chunks into newly stored,
	// satisfied by a base reference, and satisfied by intra-set sharing.
	// LocalRawBytes / RefRawBytes are the corresponding raw byte splits.
	BaseName      string
	Blobs         int
	ChunksLocal   int
	ChunksRef     int
	ChunksShared  int
	LocalRawBytes int64
	RefRawBytes   int64
	// CompressWallSeconds is the real parallel-compression wall time.
	// SimWriteSeconds is the simulated NFS busy time of all chunk + manifest
	// transfers including retry backoff. SimSerialSeconds composes the two
	// with no overlap (compress everything, then write everything);
	// SimPipelinedSeconds replays the actual schedule — chunks drain while
	// later chunks compress — so the difference is the measured overlap win.
	CompressWallSeconds float64
	SimWriteSeconds     float64
	SimSerialSeconds    float64
	SimPipelinedSeconds float64
}

// Ratio is the overall compression ratio of the payload.
func (r *WriteResult) Ratio() float64 {
	if r.PayloadBytes == 0 {
		return 0
	}
	return float64(r.RawBytes) / float64(r.PayloadBytes)
}

// DedupRatio is the fraction of the set's raw bytes NOT stored as new
// payload — satisfied by base references or intra-set sharing. 0 on full
// sets.
func (r *WriteResult) DedupRatio() float64 {
	if r.RawBytes == 0 {
		return 0
	}
	return float64(r.RefRawBytes) / float64(r.RawBytes)
}

// localRatio is the measured compression ratio of this delta set's locally
// stored content: raw bytes of new blobs over their compressed size. 0 when
// the set stored nothing new (complete dedup).
func (r *WriteResult) localRatio() float64 {
	if r.PayloadBytes == 0 {
		return 0
	}
	return float64(r.LocalRawBytes) / float64(r.PayloadBytes)
}

// ParityOverhead is the parity layer's share of compressed payload bytes —
// the storage (and wire) premium paid for reconstructability.
func (r *WriteResult) ParityOverhead() float64 {
	if r.PayloadBytes == 0 {
		return 0
	}
	return float64(r.ParityBytes) / float64(r.PayloadBytes)
}

// OverlapMargin is the fraction of the serial schedule the pipeline saved:
// (serial − pipelined) / serial.
func (r *WriteResult) OverlapMargin() float64 {
	if r.SimSerialSeconds <= 0 {
		return 0
	}
	return (r.SimSerialSeconds - r.SimPipelinedSeconds) / r.SimSerialSeconds
}

// Write packages the set onto the medium through the pipelined scheduler:
// a bounded work queue feeds Workers parallel compressors (one reusable
// container.Packer each), while the caller's goroutine drains completed
// chunks to the medium in logical order — so compression of chunk k+1
// overlaps the wire time of chunk k, and the manifest is byte-identical at
// any worker count. Transient medium faults are retried with capped
// exponential backoff; wire faults come from the mount's own FaultConfig.
// The scheduler itself is the shared stream.Engine; Write supplies the
// compressors as producers and the medium drain as the in-order consumer.
func Write(med Medium, set Set, opts WriteOptions) (*WriteResult, error) {
	if err := set.validate(); err != nil {
		return nil, err
	}
	if opts.Advisor != nil {
		tun, err := opts.Advisor.AdviseWrite(&set, opts)
		if err != nil {
			return nil, fmt.Errorf("ckpt: advisor: %w", err)
		}
		if set, opts, err = applyTuning(set, opts, tun); err != nil {
			return nil, err
		}
		if err := set.validate(); err != nil {
			return nil, err
		}
	}
	opts = opts.normalized()
	if opts.Base != nil {
		return writeDelta(med, set, opts)
	}
	span := obs.Start("ckpt.write")
	defer span.End()

	nFields := len(set.Fields)
	n := set.Ranks * nFields
	var coder *ec.Coder
	if opts.ParityRanks < 0 || opts.ParityRanks > maxParityRanks {
		return nil, fmt.Errorf("ckpt: parity ranks %d outside [0, %d]", opts.ParityRanks, maxParityRanks)
	}
	if opts.ParityRanks > 0 {
		var err error
		if coder, err = ec.New(set.Ranks, opts.ParityRanks); err != nil {
			return nil, err
		}
	}

	// Lanes 0..Workers-1 are the compressors; lane Workers is the in-order
	// writer on the caller's goroutine; lane Workers+1 is the dispatcher.
	eng := stream.Start(n, stream.Options{
		Name:          "ckpt.write",
		Workers:       opts.Workers,
		QueueDepth:    opts.QueueDepth,
		QueueGauge:    "lcpio_ckpt_queue_depth",
		InFlightGauge: "lcpio_ckpt_bytes_in_flight",
	}, func(lane int) stream.ProduceFunc {
		packer, perr := container.NewPacker(set.Codec,
			container.Options{ChunkElems: opts.ChunkElems, Parallelism: 1})
		return func(idx int) ([]byte, error) {
			if perr != nil {
				return nil, perr
			}
			f := &set.Fields[idx%nFields]
			return packer.Pack(f.Data[idx/nFields], f.Dims, f.ErrorBound)
		}
	})
	defer eng.Close()

	m := &Manifest{
		SetName:     set.Name,
		Meta:        set.Meta,
		Codec:       set.Codec,
		Ranks:       set.Ranks,
		Fields:      make([]FieldInfo, nFields),
		Chunks:      make([]ChunkInfo, n),
		ParityRanks: opts.ParityRanks,
	}
	for i, f := range set.Fields {
		m.Fields[i] = FieldInfo{Name: f.Name, Dims: append([]int(nil), f.Dims...), ErrorBound: f.ErrorBound}
	}

	res := &WriteResult{Manifest: m, Chunks: n, ParityRanks: opts.ParityRanks}
	var header [headerLen]byte
	wire.AppendUint32(wire.AppendUint32(header[:0], magic), m.formatVersion())
	wr := eng.Consumer()
	wr.Run("flush")
	if _, err := writeChunk(med, header[:], 0, opts, res); err != nil {
		wr.WaitInput()
		return nil, fmt.Errorf("ckpt: writing header: %w", err)
	}
	wr.WaitInput()

	// In-order drain via the engine's reorder buffer, on this goroutine.
	// writerClock is the simulated drain timeline: a chunk's transfer
	// starts when both the wire is free and the chunk is compressed
	// (AvailAt).
	var writerClock, compressWall float64
	offset := int64(headerLen)
	// Parity accumulators, one stripe per field. Each committed chunk is
	// folded in as it drains, so parity generation pipelines alongside the
	// compression of later chunks; GF(2^8) accumulation is order- and
	// padding-independent, so the shards are byte-identical at any worker
	// count or queue depth.
	var parity [][][]byte
	if coder != nil {
		parity = make([][][]byte, nFields)
	}
	if err := eng.Drain(func(d stream.Item) error {
		if d.Err != nil {
			return fmt.Errorf("ckpt: chunk %d (rank %d, field %q): %w",
				d.Idx, d.Idx/nFields, set.Fields[d.Idx%nFields].Name, d.Err)
		}
		if d.AvailAt > compressWall {
			compressWall = d.AvailAt
		}
		c := &m.Chunks[d.Idx]
		c.Offset = offset
		c.Size = int64(len(d.Blob))
		c.CRC = Digest(d.Blob)
		simSec, err := writeChunk(med, d.Blob, offset, opts, res)
		if err != nil {
			return fmt.Errorf("ckpt: chunk %d: %w", d.Idx, err)
		}
		res.SimWriteSeconds += simSec
		if d.AvailAt > writerClock {
			writerClock = d.AvailAt
		}
		writerClock += simSec
		if coder != nil {
			fi := d.Idx % nFields
			ecStart := time.Now()
			parity[fi], err = coder.UpdateParity(parity[fi], d.Idx/nFields, d.Blob, opts.Workers)
			if err != nil {
				return fmt.Errorf("ckpt: parity fold of chunk %d: %w", d.Idx, err)
			}
			res.ECEncodeSeconds += time.Since(ecStart).Seconds()
		}
		offset += c.Size
		res.PayloadBytes += c.Size
		obs.Add("lcpio_ckpt_chunks_written_total", 1)
		obs.Add("lcpio_ckpt_bytes_written_total", c.Size)
		return nil
	}); err != nil {
		return nil, err
	}
	wr.Run("flush")

	// Parity shards land after the data payload, field-major, riding the
	// same retry/transfer path as data chunks.
	if coder != nil {
		m.ParityChunks = make([]ChunkInfo, nFields*opts.ParityRanks)
		for fi := 0; fi < nFields; fi++ {
			for j := 0; j < opts.ParityRanks; j++ {
				blob := parity[fi][j]
				c := m.ParityChunk(fi, j)
				c.Rank, c.Field = set.Ranks+j, fi
				c.Offset = offset
				c.Size = int64(len(blob))
				c.CRC = Digest(blob)
				simSec, err := writeChunk(med, blob, offset, opts, res)
				if err != nil {
					return nil, fmt.Errorf("ckpt: parity shard (field %q, %d): %w",
						set.Fields[fi].Name, j, err)
				}
				res.SimWriteSeconds += simSec
				writerClock += simSec
				offset += c.Size
				res.ParityBytes += c.Size
				obs.Add("lcpio_ckpt_parity_bytes_written_total", c.Size)
			}
		}
	}

	// Manifest + footer ride the same retry/transfer path as chunks.
	mb := m.encode()
	simSec, err := writeChunk(med, mb, offset, opts, res)
	if err != nil {
		return nil, fmt.Errorf("ckpt: writing manifest: %w", err)
	}
	res.SimWriteSeconds += simSec
	writerClock += simSec
	var foot []byte
	foot = wire.AppendUint64(foot, uint64(offset))
	foot = wire.AppendUint64(foot, uint64(len(mb)))
	foot = wire.AppendUint32(foot, Digest(mb))
	foot = wire.AppendUint32(foot, magic)
	if _, err := writeChunk(med, foot, offset+int64(len(mb)), opts, res); err != nil {
		return nil, fmt.Errorf("ckpt: writing footer: %w", err)
	}

	res.FileBytes = offset + int64(len(mb)) + footerLen
	res.RawBytes = m.RawBytes()
	res.CompressWallSeconds = compressWall
	// The parity fold is writer-side CPU work; it extends both schedules
	// equally (the serial schedule would run it after compressing).
	res.SimPipelinedSeconds = writerClock + res.ECEncodeSeconds
	res.SimSerialSeconds = compressWall + res.SimWriteSeconds + res.ECEncodeSeconds
	res.MeanRelEB = meanRelEB(set)
	obs.AddFloat("lcpio_ckpt_sim_write_seconds_total", res.SimWriteSeconds)
	obs.Set("lcpio_ckpt_queue_depth", 0)
	obs.Set("lcpio_ckpt_bytes_in_flight", 0)
	return res, nil
}

// writeChunk drains one blob to the medium with capped exponential backoff
// on transient faults, resuming after short writes, and returns the
// simulated NFS time of the transfer (retries add backoff plus the resent
// bytes' wire time).
func writeChunk(med Medium, blob []byte, off int64, opts WriteOptions, res *WriteResult) (float64, error) {
	tr := opts.Mount.Write(int64(len(blob)))
	res.WireRetransmits += tr.Retransmits
	res.WireShortWrites += tr.ShortWrites
	simSec := tr.NetworkSeconds
	wrote := 0
	for attempt := 1; ; attempt++ {
		n, err := med.WriteAt(blob[wrote:], off+int64(wrote))
		if n > 0 {
			wrote += n
		}
		if err == nil && wrote == len(blob) {
			return simSec, nil
		}
		if err == nil {
			err = fmt.Errorf("%w: short write (%d of %d bytes)", ErrTransient, wrote, len(blob))
		}
		if attempt >= opts.Retry.MaxAttempts {
			return simSec, fmt.Errorf("giving up after %d attempts: %w", attempt, err)
		}
		res.Retries++
		obs.Add("lcpio_ckpt_retries_total", 1)
		backoff := opts.Retry.backoff(attempt)
		// The resent tail costs wire time again, after the backoff.
		rt := opts.Mount.Write(int64(len(blob) - wrote))
		res.WireRetransmits += rt.Retransmits
		res.WireShortWrites += rt.ShortWrites
		simSec += backoff + rt.NetworkSeconds
	}
}

// MeanRelEB returns the raw-byte-weighted mean of each field's
// range-relative error bound — the knob the machine package's cycle model
// takes. It is data-dependent (field value ranges), so a client dumping a
// set over the checkpoint service computes it locally and ships the scalar;
// the daemon cannot derive it from geometry alone.
func (s Set) MeanRelEB() float64 { return meanRelEB(s) }

// meanRelEB is the raw-byte-weighted mean of each field's range-relative
// error bound — the knob the machine package's cycle model takes.
func meanRelEB(set Set) float64 {
	var wsum, sum float64
	for _, f := range set.Fields {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, rank := range f.Data {
			for _, v := range rank {
				fv := float64(v)
				if fv < lo {
					lo = fv
				}
				if fv > hi {
					hi = fv
				}
			}
		}
		rng := hi - lo
		if !(rng > 0) {
			rng = 1
		}
		w := float64(len(f.Data)) * float64(len(f.Data[0]))
		wsum += w
		sum += w * f.ErrorBound / rng
	}
	if wsum == 0 {
		return 1e-3
	}
	return sum / wsum
}
