package lossless

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, src []byte, opts Options) []byte {
	t.Helper()
	comp := Compress(src, opts)
	got, err := Decompress(comp)
	if err != nil {
		t.Fatalf("Decompress: %v", err)
	}
	if !bytes.Equal(got, src) {
		t.Fatalf("round trip mismatch: len(got)=%d len(src)=%d", len(got), len(src))
	}
	return comp
}

func TestEmpty(t *testing.T) {
	comp := roundTrip(t, nil, Options{})
	if len(comp) == 0 {
		t.Fatal("empty input must still produce a parsable stream")
	}
}

func TestSingleByte(t *testing.T) {
	roundTrip(t, []byte{42}, Options{})
}

func TestShortInputs(t *testing.T) {
	for n := 0; n <= 8; n++ {
		src := make([]byte, n)
		for i := range src {
			src[i] = byte(i * 37)
		}
		roundTrip(t, src, Options{})
	}
}

func TestAllSameByte(t *testing.T) {
	src := bytes.Repeat([]byte{7}, 100000)
	comp := roundTrip(t, src, Options{})
	if r := Ratio(len(src), len(comp)); r < 50 {
		t.Fatalf("constant input should compress hugely; ratio %.1f", r)
	}
}

func TestRepetitiveText(t *testing.T) {
	src := []byte(strings.Repeat("the quick brown fox jumps over the lazy dog. ", 500))
	comp := roundTrip(t, src, Options{})
	if r := Ratio(len(src), len(comp)); r < 5 {
		t.Fatalf("repetitive text should compress well; ratio %.2f", r)
	}
}

func TestIncompressibleRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	src := make([]byte, 1<<16)
	rng.Read(src)
	comp := roundTrip(t, src, Options{})
	// Random bytes should not expand by more than the header + table slack.
	if len(comp) > len(src)+len(src)/20+1024 {
		t.Fatalf("random input expanded too much: %d -> %d", len(src), len(comp))
	}
}

func TestLongMatchRun(t *testing.T) {
	// A long run exercises maxMatch segmentation and skip-ahead insertion.
	src := append(bytes.Repeat([]byte{1, 2, 3, 4}, 5000), 0xFF)
	roundTrip(t, src, Options{})
}

func TestMatchAtWindowEdge(t *testing.T) {
	opts := Options{WindowSize: 1 << 10, MaxChainLen: 32}
	pattern := []byte("abcdefgh12345678")
	var src []byte
	src = append(src, pattern...)
	// Push the pattern exactly to the edge of the window and beyond.
	filler := make([]byte, 1<<10)
	rng := rand.New(rand.NewSource(2))
	rng.Read(filler)
	src = append(src, filler...)
	src = append(src, pattern...)
	roundTrip(t, src, opts)
}

func TestLazyVsGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	src := make([]byte, 1<<15)
	// Structured data with embedded repeats.
	for i := range src {
		src[i] = byte((i / 7) % 31)
	}
	rng.Read(src[1<<14:])
	lazy := roundTrip(t, src, Options{LazyMatching: true})
	greedy := roundTrip(t, src, Options{LazyMatching: false})
	// Both must round-trip; lazy should never be dramatically worse.
	if len(lazy) > len(greedy)*11/10 {
		t.Fatalf("lazy %d much worse than greedy %d", len(lazy), len(greedy))
	}
}

func TestWindowNormalization(t *testing.T) {
	cases := []struct{ in, want int }{
		{0, 32 << 10}, {100, 1 << 10}, {3000, 2048}, {1 << 20, 32 << 10},
		{4096, 4096},
	}
	for _, c := range cases {
		got := (Options{WindowSize: c.in}).normalized().WindowSize
		if got != c.want {
			t.Errorf("normalize(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestDecompressCorrupt(t *testing.T) {
	src := []byte(strings.Repeat("hello world ", 100))
	comp := Compress(src, Options{})
	// Truncations must error, never panic or fabricate data.
	for _, cut := range []int{1, len(comp) / 2, len(comp) - 1} {
		if _, err := Decompress(comp[:cut]); err == nil {
			t.Errorf("truncation at %d: expected error", cut)
		}
	}
	// Bit flips in the payload must be detected (length mismatch or decode
	// failure) or decode to the wrong bytes — but never panic.
	for i := 16; i < len(comp); i += 7 {
		mut := append([]byte(nil), comp...)
		mut[i] ^= 0x10
		out, err := Decompress(mut)
		if err == nil && bytes.Equal(out, src) {
			// A flip that still round-trips identically would indicate
			// dead bits in the format; tolerate only trailing padding.
			if i < len(comp)-2 {
				t.Errorf("bit flip at %d silently ignored", i)
			}
		}
	}
}

func TestDecompressGarbageHeader(t *testing.T) {
	if _, err := Decompress([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}); err == nil {
		t.Fatal("expected error on absurd header length")
	}
	if _, err := Decompress(nil); err == nil {
		t.Fatal("expected error on empty input")
	}
}

func TestLengthCodeTables(t *testing.T) {
	// Every length in [3,258] must map to a code whose base+extra range
	// covers it.
	for l := minMatch; l <= maxMatch; l++ {
		c := lengthCode(l)
		lo := lenBase[c]
		hi := lo + (1 << lenExtra[c]) - 1
		if c == 28 {
			hi = 258
		}
		if l < lo || l > hi {
			t.Fatalf("length %d mapped to code %d [%d,%d]", l, c, lo, hi)
		}
	}
	for d := 1; d <= 32768; d++ {
		c := distCode(d)
		lo := distBase[c]
		hi := lo + (1 << distExtra[c]) - 1
		if d < lo || d > hi {
			t.Fatalf("dist %d mapped to code %d [%d,%d]", d, c, lo, hi)
		}
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64, structured bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(8192)
		src := make([]byte, n)
		if structured {
			for i := range src {
				src[i] = byte((i * i / 13) % 17)
			}
		} else {
			rng.Read(src)
		}
		comp := Compress(src, Options{})
		out, err := Decompress(comp)
		return err == nil && bytes.Equal(out, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Ablation bench: window size vs ratio and speed (DESIGN.md §5).
func BenchmarkCompressWindow(b *testing.B) {
	src := make([]byte, 1<<18)
	for i := range src {
		src[i] = byte((i / 11) % 61)
	}
	for _, win := range []int{1 << 10, 4 << 10, 32 << 10} {
		b.Run(byteSize(win), func(b *testing.B) {
			opts := Options{WindowSize: win}
			b.SetBytes(int64(len(src)))
			b.ReportAllocs()
			var compLen int
			for i := 0; i < b.N; i++ {
				compLen = len(Compress(src, opts))
			}
			b.ReportMetric(Ratio(len(src), compLen), "ratio")
		})
	}
}

func BenchmarkDecompress(b *testing.B) {
	src := make([]byte, 1<<18)
	for i := range src {
		src[i] = byte((i / 11) % 61)
	}
	comp := Compress(src, Options{})
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decompress(comp); err != nil {
			b.Fatal(err)
		}
	}
}

func byteSize(n int) string {
	return fmt.Sprintf("%dKiB", n>>10)
}
