// Package lossless implements a DEFLATE-style byte compressor: LZ77 matching
// over a sliding window followed by canonical Huffman coding of the token
// stream. It is the final "lossless stage" of the sz codec, standing in for
// the Zstd/GZIP pass the SZ reference implementation applies to its Huffman
// output.
//
// The format is self-describing: a header carries the raw length and the two
// Huffman tables (literal/length and distance), followed by the token
// payload. It is not DEFLATE-compatible, but uses the same token alphabet
// (literals 0..255, end-of-block, length codes with extra bits, distance
// codes with extra bits), which makes its compression behaviour — and its
// CPU cost profile — representative of the real pipeline.
package lossless

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"lcpio/internal/bitstream"
	"lcpio/internal/huffman"
)

// ErrCorrupt is returned when decoding malformed input.
var ErrCorrupt = errors.New("lossless: corrupt stream")

// MaxExpansion bounds the raw bytes one compressed byte can decode to (a
// saturated run of maximum-length matches, one per bit). Decompress rejects
// headers claiming more; outer formats reuse it for their own plausibility
// checks before sizing output buffers.
const MaxExpansion = 8 * maxMatch

const (
	minMatch = 3
	maxMatch = 258

	symEOB      = 256 // end of block
	symLenBase  = 257 // first of 29 length codes
	numLitLen   = 257 + 29
	numDistSyms = 30

	hashBits = 15
	hashSize = 1 << hashBits
)

// Options controls the matcher. The zero value is replaced by Defaults.
type Options struct {
	// WindowSize is the LZ77 history window in bytes (power of two,
	// 1KiB..32KiB). Larger windows find more matches at higher CPU cost;
	// this is one of the ablation knobs called out in DESIGN.md.
	WindowSize int
	// MaxChainLen bounds hash-chain traversal per position (effort).
	MaxChainLen int
	// LazyMatching enables one-byte-deferred matching as in deflate's
	// higher effort levels.
	LazyMatching bool
}

// Defaults returns the standard effort level used by the sz codec.
func Defaults() Options {
	return Options{WindowSize: 32 << 10, MaxChainLen: 64, LazyMatching: true}
}

func (o Options) normalized() Options {
	d := Defaults()
	if o.WindowSize == 0 {
		o.WindowSize = d.WindowSize
	}
	if o.WindowSize < 1<<10 {
		o.WindowSize = 1 << 10
	}
	if o.WindowSize > 32<<10 {
		o.WindowSize = 32 << 10
	}
	// Round down to a power of two.
	for o.WindowSize&(o.WindowSize-1) != 0 {
		o.WindowSize &= o.WindowSize - 1
	}
	if o.MaxChainLen <= 0 {
		o.MaxChainLen = d.MaxChainLen
	}
	return o
}

// length code table: code i covers lengths [lenBase[i], lenBase[i]+2^lenExtra[i]).
var (
	lenBase = [29]int{3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31,
		35, 43, 51, 59, 67, 83, 99, 115, 131, 163, 195, 227, 258}
	lenExtra = [29]uint{0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2,
		3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0}
	distBase = [30]int{1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129,
		193, 257, 385, 513, 769, 1025, 1537, 2049, 3073, 4097, 6145, 8193,
		12289, 16385, 24577}
	distExtra = [30]uint{0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6,
		7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13, 13}
)

func lengthCode(l int) int {
	// Linear scan is fine: 29 entries, and encode cost is dominated by
	// matching. Binary search would obscure the table correspondence.
	for i := 28; i >= 0; i-- {
		if l >= lenBase[i] {
			return i
		}
	}
	panic(fmt.Sprintf("lossless: length %d below minimum", l))
}

func distCode(d int) int {
	for i := 29; i >= 0; i-- {
		if d >= distBase[i] {
			return i
		}
	}
	panic(fmt.Sprintf("lossless: distance %d below minimum", d))
}

// token is 8 bytes to keep the token stream cheap to grow on
// literal-heavy input: length 0 marks a literal whose byte lives in
// distOrLit; otherwise distOrLit is the match distance.
type token struct {
	length    uint32
	distOrLit uint32
}

func literalToken(b byte) token { return token{distOrLit: uint32(b)} }
func matchToken(l, d int) token { return token{length: uint32(l), distOrLit: uint32(d)} }
func (t token) isLiteral() bool { return t.length == 0 }
func (t token) lit() byte       { return byte(t.distOrLit) }
func (t token) matchLen() int   { return int(t.length) }
func (t token) matchDist() int  { return int(t.distOrLit) }

// encState bundles every scratch structure the encoder needs — LZ77 hash
// tables, the token stream, Huffman histograms and builders, and the
// bitstream staging writer — so steady-state compression performs no
// allocations once the pool is warm.
type encState struct {
	tokens     []token
	head       []int32
	prev       []int32
	litLenFreq []uint64
	distFreq   []uint64
	litBuilder huffman.Builder
	dstBuilder huffman.Builder
	w          bitstream.Writer
}

var encPool = sync.Pool{New: func() any {
	return &encState{
		head:       make([]int32, hashSize),
		litLenFreq: make([]uint64, numLitLen),
		distFreq:   make([]uint64, numDistSyms),
	}
}}

// Compress compresses src with the given options and returns the packed
// stream. An empty src compresses to a valid stream.
func Compress(src []byte, opts Options) []byte {
	return AppendCompress(nil, src, opts)
}

// AppendCompress compresses src and appends the packed stream to dst,
// returning the extended slice. All scratch state comes from an internal
// pool, so steady-state calls do not allocate beyond growing dst.
func AppendCompress(dst, src []byte, opts Options) []byte {
	opts = opts.normalized()
	st := encPool.Get().(*encState)
	defer encPool.Put(st)
	tokenizeInto(st, src, opts)

	// Build histograms over the token alphabet.
	litLenFreq, distFreq := st.litLenFreq, st.distFreq
	clear(litLenFreq)
	clear(distFreq)
	for _, t := range st.tokens {
		if t.isLiteral() {
			litLenFreq[t.lit()]++
		} else {
			litLenFreq[symLenBase+lengthCode(t.matchLen())]++
			distFreq[distCode(t.matchDist())]++
		}
	}
	litLenFreq[symEOB]++

	litLenCode := mustBuildWith(&st.litBuilder, litLenFreq)
	var distCodeTab code
	hasDist := false
	for _, f := range distFreq {
		if f > 0 {
			hasDist = true
			break
		}
	}
	if hasDist {
		distCodeTab = mustBuildWith(&st.dstBuilder, distFreq)
	}

	w := &st.w
	w.Reset()
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(src)))
	w.WriteBits(binary.LittleEndian.Uint64(hdr[:]), 64)
	w.WriteBool(hasDist)
	litLenCode.writeTable(w)
	if hasDist {
		distCodeTab.writeTable(w)
	}
	for _, t := range st.tokens {
		if t.isLiteral() {
			litLenCode.encode(w, int(t.lit()))
			continue
		}
		lc := lengthCode(t.matchLen())
		litLenCode.encode(w, symLenBase+lc)
		w.WriteBits(uint64(t.matchLen()-lenBase[lc]), lenExtra[lc])
		dc := distCode(t.matchDist())
		distCodeTab.encode(w, dc)
		w.WriteBits(uint64(t.matchDist()-distBase[dc]), distExtra[dc])
	}
	litLenCode.encode(w, symEOB)
	// w.Bytes aliases the pooled writer's buffer; copy into dst before the
	// deferred Put makes it reusable.
	return append(dst, w.Bytes()...)
}

// Decompress reverses Compress.
func Decompress(buf []byte) ([]byte, error) {
	return AppendDecompress(nil, buf)
}

// AppendDecompress decompresses buf and appends the raw bytes to dst,
// returning the extended slice. Match distances are resolved only within the
// newly decompressed region, never into the dst prefix.
func AppendDecompress(dst, buf []byte) ([]byte, error) {
	r := bitstream.NewReader(buf)
	n64, err := r.ReadBits(64)
	if err != nil {
		return nil, err
	}
	if n64 > 1<<40 {
		return nil, ErrCorrupt
	}
	rawLen := int(n64)
	// Plausibility: even a 1-bit Huffman token cannot emit more than
	// maxMatch bytes, so the raw length is bounded by compressed bits
	// times the maximum match length. This rejects forged headers before
	// they drive allocation.
	if rawLen > len(buf)*MaxExpansion+1024 {
		return nil, ErrCorrupt
	}
	hasDist, err := r.ReadBool()
	if err != nil {
		return nil, err
	}
	litLenCode, err := readTable(r)
	if err != nil {
		return nil, err
	}
	var distTab *code
	if hasDist {
		distTab, err = readTable(r)
		if err != nil {
			return nil, err
		}
	}
	// Cap the initial allocation: growth is amortized and a forged header
	// that slipped past the plausibility check must not OOM us.
	capHint := rawLen
	if capHint > 1<<20 {
		capHint = 1 << 20
	}
	base := len(dst)
	out := dst
	if cap(out)-base < capHint {
		out = append(make([]byte, 0, base+capHint), dst...)
	}
	for {
		s, err := litLenCode.decode(r)
		if err != nil {
			return nil, err
		}
		switch {
		case s < 256:
			out = append(out, byte(s))
		case s == symEOB:
			if len(out)-base != rawLen {
				return nil, ErrCorrupt
			}
			return out, nil
		default:
			lc := s - symLenBase
			if lc >= 29 || distTab == nil {
				return nil, ErrCorrupt
			}
			extra, err := r.ReadBits(lenExtra[lc])
			if err != nil {
				return nil, err
			}
			length := lenBase[lc] + int(extra)
			ds, err := distTab.decode(r)
			if err != nil {
				return nil, err
			}
			dextra, err := r.ReadBits(distExtra[ds])
			if err != nil {
				return nil, err
			}
			dist := distBase[ds] + int(dextra)
			if dist > len(out)-base {
				return nil, ErrCorrupt
			}
			if len(out)-base+length > rawLen {
				return nil, ErrCorrupt
			}
			start := len(out) - dist
			for i := 0; i < length; i++ {
				out = append(out, out[start+i])
			}
		}
		if len(out)-base > rawLen {
			return nil, ErrCorrupt
		}
	}
}

func hash4(b []byte) uint32 {
	v := binary.LittleEndian.Uint32(b)
	return (v * 2654435761) >> (32 - hashBits)
}

// tokenizeInto runs the LZ77 matcher, producing a literal/match token stream
// in st.tokens and reusing st's hash tables.
func tokenizeInto(st *encState, src []byte, opts Options) {
	// Worst case (incompressible input) emits one literal per byte;
	// reserving half of that keeps regrowth to a single step while not
	// over-allocating for compressible data.
	if cap(st.tokens) < len(src)/2+8 {
		st.tokens = make([]token, 0, len(src)/2+8)
	}
	tokens := st.tokens[:0]
	if len(src) < minMatch+1 {
		for _, b := range src {
			tokens = append(tokens, literalToken(b))
		}
		st.tokens = tokens
		return
	}
	head := st.head
	if cap(st.prev) < len(src) {
		st.prev = make([]int32, len(src))
	}
	prev := st.prev[:len(src)]
	for i := range head {
		head[i] = -1
	}
	window := opts.WindowSize

	findMatch := func(pos int) (length, dist int) {
		// hash4 reads 4 bytes; tail matches shorter than that are emitted
		// as literals instead.
		if pos+4 > len(src) {
			return 0, 0
		}
		limit := len(src) - pos
		if limit > maxMatch {
			limit = maxMatch
		}
		h := hash4(src[pos:])
		cand := head[h]
		chains := opts.MaxChainLen
		best, bestDist := 0, 0
		for cand >= 0 && chains > 0 && pos-int(cand) <= window {
			c := int(cand)
			// Quick rejection on the byte past the current best.
			if best > 0 && (c+best >= pos || src[c+best] != src[pos+best]) {
				cand = prev[c]
				chains--
				continue
			}
			l := 0
			for l < limit && src[c+l] == src[pos+l] {
				l++
			}
			if l > best {
				best, bestDist = l, pos-c
				if l >= limit {
					break
				}
			}
			cand = prev[c]
			chains--
		}
		if best >= minMatch {
			return best, bestDist
		}
		return 0, 0
	}

	insert := func(pos int) {
		if pos+4 > len(src) {
			return
		}
		h := hash4(src[pos:])
		prev[pos] = head[h]
		head[h] = int32(pos)
	}

	i := 0
	for i < len(src) {
		length, dist := findMatch(i)
		if opts.LazyMatching && length > 0 && length < maxMatch && i+1 < len(src) {
			insert(i)
			nl, nd := findMatch(i + 1)
			if nl > length+1 {
				// Defer: emit the current byte as a literal, take the
				// better match at i+1 next iteration.
				tokens = append(tokens, literalToken(src[i]))
				i++
				length, dist = nl, nd
			}
		} else if length > 0 {
			insert(i)
		}
		if length == 0 {
			insert(i)
			tokens = append(tokens, literalToken(src[i]))
			i++
			continue
		}
		tokens = append(tokens, matchToken(length, dist))
		// Insert hash entries across the match so later matches can refer
		// into it; skip-ahead insertion keeps long runs cheap.
		end := i + length
		step := 1
		if length > 64 {
			step = 4
		}
		for j := i + 1; j < end && j < len(src); j += step {
			insert(j)
		}
		i = end
	}
	st.tokens = tokens
}

// Ratio reports the compression ratio raw/compressed for a given input, a
// convenience for tests and diagnostics.
func Ratio(raw, compressed int) float64 {
	if compressed == 0 {
		return 0
	}
	return float64(raw) / float64(compressed)
}
