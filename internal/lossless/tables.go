package lossless

import (
	"lcpio/internal/bitstream"
	"lcpio/internal/huffman"
)

// code is a thin adapter over huffman.Code keeping call sites in the token
// coder terse.
type code struct {
	h *huffman.Code
}

// mustBuildWith builds a code through a reusable Builder; the result is only
// valid until the Builder's next Build call.
func mustBuildWith(b *huffman.Builder, freqs []uint64) code {
	h, err := b.Build(freqs)
	if err != nil {
		// Callers guarantee at least one nonzero frequency (EOB is always
		// counted), so a failure here is a programming error.
		panic("lossless: " + err.Error())
	}
	return code{h: h}
}

func (c *code) encode(w *bitstream.Writer, s int)       { c.h.Encode(w, s) }
func (c *code) decode(r *bitstream.Reader) (int, error) { return c.h.Decode(r) }
func (c *code) writeTable(w *bitstream.Writer)          { c.h.WriteTable(w) }

func readTable(r *bitstream.Reader) (*code, error) {
	h, err := huffman.ReadTable(r)
	if err != nil {
		return nil, err
	}
	return &code{h: h}, nil
}
