package svc

import (
	"bytes"
	"testing"

	"lcpio/internal/ckpt"
	"lcpio/internal/container"
	"lcpio/internal/wire"
)

// fuzzFrames builds one frame of every type with a realistic payload, for
// corpus seeding.
func fuzzFrames() [][]byte {
	req := OpenRequest{
		Tenant: "t0", SetName: "s0", Meta: "m", Codec: "sz", Ranks: 2,
		Fields: []ckpt.FieldInfo{
			{Name: "p", Dims: []int{4, 8}, ErrorBound: 1e-3},
			{Name: "v", Dims: []int{16}, ErrorBound: 1e-4},
		},
		RelEB: 1e-3, ProjectedRatio: 8, DeadlineSeconds: 0.5,
	}
	acc := OpenAccept{Session: 1, ExtentBase: 8, ExtentBytes: 4096, RankStride: 1024,
		ProjectedJoules: 2.5, AdmissionWaitSeconds: 0.01}
	rej := Reject{Code: RejectQuota, Detail: "no room", ProjectedJoules: 2.5, BudgetJoules: 1}
	pr := PutReply{Idx: 3, QueueWaitSeconds: 0.125, Backpressure: true}
	res := Result{SetBytes: 128, PayloadBytes: 96, RawBytes: 512, Chunks: 4,
		CompressJoules: 1, TransitJoules: 2, Joules: 3, SimSeconds: 0.5, GoodputBps: 1536,
		WireCodec: "sz", WireSavedSeconds: 0.01, WireVerifiedChunks: 4}
	rr := RestoreReply{Chunks: 4, RawBytes: 512, SimReadSeconds: 0.1, ReadJoules: 0.7, DecompressRatio: 5.3}
	areq := AdviseRequest{Tenant: "t0", RawBytes: 1 << 20, DeadlineSeconds: 0.5, MinPSNR: 60}
	arep := AdviseReply{Codec: "zfp", RelEB: 1e-3, Ratio: 8.5, ProjJoules: 2.5,
		ProjSeconds: 0.25, Admissible: true}

	frames := []frame{
		{Type: frameOpen, Payload: req.encode()},
		{Type: frameOpenOK, Session: 1, Payload: acc.encode()},
		{Type: frameReject, Payload: rej.encode()},
		{Type: framePut, Session: 1, Payload: encodePut(3, []byte{9, 8, 7, 6})},
		{Type: framePutZ, Session: 1, Payload: encodePutZ(3, 64, []byte{9, 8, 7, 6})},
		{Type: framePutOK, Session: 1, Payload: pr.encode()},
		{Type: frameClose, Session: 1},
		{Type: frameCloseOK, Session: 1, Payload: res.encode()},
		{Type: frameList},
		{Type: frameListOK, Payload: encodeSetEntries([]SetEntry{{Name: "s0", Tenant: "t0", Bytes: 128}})},
		{Type: frameRestoreReq, Payload: encodeSetName("s0")},
		{Type: frameRestoreOK, Session: 1, Payload: rr.encode()},
		{Type: frameAdvise, Payload: areq.encode()},
		{Type: frameAdviseOK, Payload: arep.encode()},
		{Type: frameErr, Payload: []byte("boom")},
	}
	out := make([][]byte, len(frames))
	for i, fr := range frames {
		out[i] = appendFrame(nil, fr)
	}
	return out
}

// FuzzSvcFrame drives the session wire framing with arbitrary byte
// streams. Contract: ParseFrame either fails cleanly or yields a frame
// that re-encodes to exactly the consumed bytes; payload parsers for the
// recognized type never panic or over-allocate (quota/geometry fields are
// capped before any size arithmetic); and parsing continues frame by
// frame through interleaved streams like a real connection would.
func FuzzSvcFrame(f *testing.F) {
	seeds := fuzzFrames()
	for _, s := range seeds {
		f.Add(s)
	}
	// Interleaved stream of every frame type back to back.
	var all []byte
	for _, s := range seeds {
		all = append(all, s...)
	}
	f.Add(all)
	// Truncations and field corruptions: header magic, type byte, length
	// field, and quota-overflow geometry in an open request.
	open := seeds[0]
	for _, cut := range []int{1, frameHdrLen - 1, frameHdrLen, frameHdrLen + 3, len(open) - 1} {
		if cut < len(open) {
			f.Add(open[:cut])
		}
	}
	for _, pos := range []int{0, 4, 5, 9, frameHdrLen + 2} {
		mut := append([]byte(nil), open...)
		mut[pos] ^= 0x40
		f.Add(mut)
	}
	// A declared payload length far beyond the actual bytes.
	huge := append([]byte(nil), open[:frameHdrLen]...)
	huge = wire.AppendUint32(huge[:frameHdrLen-4], 1<<31-1)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		rest := data
		for depth := 0; len(rest) >= frameHdrLen && depth < 64; depth++ {
			fr, n, err := ParseFrame(rest)
			if err != nil {
				break
			}
			if n <= 0 || n > len(rest) {
				t.Fatalf("consumed %d of %d", n, len(rest))
			}
			if re := appendFrame(nil, fr); !bytes.Equal(re, rest[:n]) {
				t.Fatalf("re-encode mismatch: %x vs %x", re, rest[:n])
			}
			switch fr.Type {
			case frameOpen:
				if req, err := parseOpenRequest(fr.Payload); err == nil {
					// Anything that parses must be admissible arithmetic:
					// geometry caps keep RawBytes positive and bounded.
					if raw := req.RawBytes(); raw <= 0 || raw > maxRawB*4 {
						t.Fatalf("parsed open request with absurd raw size %d", raw)
					}
					if !bytes.Equal(req.encode(), fr.Payload) {
						t.Fatal("open request re-encode mismatch")
					}
				}
			case frameOpenOK:
				_, _ = parseOpenAccept(fr.Payload)
			case frameReject:
				_, _ = parseReject(fr.Payload)
			case framePut:
				_, _, _ = parsePut(fr.Payload)
			case framePutZ:
				_, _, _, _ = parsePutZ(fr.Payload)
			case framePutOK:
				_, _ = parsePutReply(fr.Payload)
			case frameCloseOK:
				_, _ = parseResult(fr.Payload)
			case frameListOK:
				_, _ = parseSetEntries(fr.Payload)
			case frameRestoreReq:
				_, _ = parseSetName(fr.Payload)
			case frameRestoreOK:
				_, _ = parseRestoreReply(fr.Payload)
			case frameAdvise:
				if req, err := parseAdviseRequest(fr.Payload); err == nil {
					if req.RawBytes <= 0 || req.RawBytes > maxRawB {
						t.Fatalf("parsed advise request with absurd raw size %d", req.RawBytes)
					}
					if !bytes.Equal(req.encode(), fr.Payload) {
						t.Fatal("advise request re-encode mismatch")
					}
				}
			case frameAdviseOK:
				if rep, err := parseAdviseReply(fr.Payload); err == nil {
					if !bytes.Equal(rep.encode(), fr.Payload) {
						t.Fatal("advise reply re-encode mismatch")
					}
				}
			}
			rest = rest[n:]
		}
	})
}

// FuzzTransitFrame drives the compressed-wire chunk decoder (framePutZ
// payloads) plus the daemon's inflate-verification path. Contract:
// parsePutZ either fails cleanly or returns a capped, 4-aligned raw length
// and a non-empty blob that re-encodes to exactly the input; inflating the
// blob the way Server.putZ does never panics, never allocates from the
// hostile declared length, and any successful inflate exposes a raw-length
// lie as a plain mismatch.
func FuzzTransitFrame(f *testing.F) {
	data := make([]float32, 96)
	for i := range data {
		data[i] = float32(i) * 0.5
	}
	blob, err := container.Pack("sz", data, []int{96}, 1e-3, container.Options{Parallelism: 1})
	if err != nil {
		f.Fatal(err)
	}
	valid := encodePutZ(2, int64(len(data))*4, blob)
	f.Add(valid)
	// Truncations through the header boundary and mid-blob.
	for _, cut := range []int{0, 1, putHdrLen, putZHdrLen - 1, putZHdrLen, putZHdrLen + 1, len(valid) - 1} {
		f.Add(valid[:cut])
	}
	// Bit flips across index, length field, and blob body.
	for _, pos := range []int{0, 3, 4, 11, putZHdrLen, putZHdrLen + 8, len(valid) - 2} {
		mut := append([]byte(nil), valid...)
		mut[pos] ^= 0x40
		f.Add(mut)
	}
	// Length-field lies: zero, unaligned, negative (as uint64), beyond the
	// allocation cap, and well-formed-but-wrong.
	lie := func(rawLen uint64) []byte {
		b := wire.AppendUint32(nil, 2)
		b = wire.AppendUint64(b, rawLen)
		return append(b, blob...)
	}
	f.Add(lie(0))
	f.Add(lie(7))
	f.Add(lie(1 << 63))
	f.Add(lie(uint64(maxRawB) + 4))
	f.Add(lie(uint64(len(data))*4 + 4))

	f.Fuzz(func(t *testing.T, payload []byte) {
		idx, rawLen, pb, err := parsePutZ(payload)
		if err != nil {
			return
		}
		if rawLen <= 0 || rawLen > maxRawB || rawLen%4 != 0 || len(pb) == 0 {
			t.Fatalf("accepted out-of-contract chunk: rawLen %d blob %d B", rawLen, len(pb))
		}
		if re := encodePutZ(idx, rawLen, pb); !bytes.Equal(re, payload) {
			t.Fatalf("re-encode mismatch: %x vs %x", re, payload)
		}
		// Inflate exactly as Server.putZ does. The output allocation is
		// bounded by the blob's own plausibility guard, not by rawLen.
		floats, _, err := container.Unpack(pb, container.Options{Parallelism: 1})
		if err != nil {
			return
		}
		if got := int64(len(floats)) * 4; got != rawLen {
			// The daemon rejects this declared/actual mismatch; the fuzz
			// contract only needs the mismatch to be detectable.
			return
		}
	})
}
