package svc

import (
	"math"
	"strings"
	"testing"

	"lcpio/internal/compress"
)

// TestAdvisePath drives the sessionless advise frames end to end: the
// daemon screens bounds with the data-independent PSNR estimate, prices
// candidates with the Eqn 2 admission machinery, and — after a session
// finalizes — re-prices with the tenant's measured ratio instead of the
// server default.
func TestAdvisePath(t *testing.T) {
	srv := NewServer(Config{})
	if err := srv.AddTenant(TenantConfig{Name: "t0"}); err != nil {
		t.Fatal(err)
	}
	cl := startPair(t, srv)

	// A 95 dB floor leaves exactly one candidate standing: zfp at the
	// tightest paper bound (sz tops out at 85 dB there).
	req := AdviseRequest{Tenant: "t0", RawBytes: 1 << 24, MinPSNR: 95}
	rep, err := cl.Advise(req)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Admissible {
		t.Fatalf("advice inadmissible: %s", rep.Reason)
	}
	if rep.Codec != "zfp" || rep.RelEB != 1e-4 {
		t.Fatalf("pick %s at eb=%g, want zfp at 1e-4", rep.Codec, rep.RelEB)
	}
	if rep.Ratio != srv.cfg.DefaultRatio {
		t.Fatalf("no-history advice priced at ratio %g, want server default %g",
			rep.Ratio, srv.cfg.DefaultRatio)
	}
	if rep.ProjJoules <= 0 || rep.ProjSeconds <= 0 {
		t.Fatalf("advice has no price: %+v", rep)
	}

	// An unreachable floor comes back inadmissible, naming the best
	// candidate instead of erroring.
	bad, err := cl.Advise(AdviseRequest{Tenant: "t0", RawBytes: 1 << 24, MinPSNR: 500})
	if err != nil {
		t.Fatal(err)
	}
	if bad.Admissible || !strings.Contains(bad.Reason, "floor") {
		t.Fatalf("impossible floor: admissible=%v reason=%q", bad.Admissible, bad.Reason)
	}

	// A deadline nothing can meet: quality-passing candidate returned with
	// the deadline named.
	late, err := cl.Advise(AdviseRequest{Tenant: "t0", RawBytes: 1 << 24, MinPSNR: 60, DeadlineSeconds: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if late.Admissible || !strings.Contains(late.Reason, "deadline") {
		t.Fatalf("impossible deadline: admissible=%v reason=%q", late.Admissible, late.Reason)
	}

	// Unknown tenants are refused.
	if _, err := cl.Advise(AdviseRequest{Tenant: "ghost", RawBytes: 1 << 20}); err == nil ||
		!strings.Contains(err.Error(), "not registered") {
		t.Fatalf("ghost tenant advise: %v", err)
	}

	// Dump a real session at the advised (codec, bound decade); the next
	// advice must be priced at the measured ratio, not the prior.
	set := genSet("s0", 2, 1)
	set.Codec = "zfp"
	for fi := range set.Fields {
		f := &set.Fields[fi]
		f.ErrorBound = compress.AbsBoundFromRelative(1e-4, f.Data[0])
	}
	res, err := cl.Dump("t0", set, DumpOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	measured := float64(res.RawBytes) / float64(res.PayloadBytes)
	rep2, err := cl.Advise(req)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Codec != "zfp" || rep2.RelEB != 1e-4 {
		t.Fatalf("second pick %s at eb=%g, want zfp at 1e-4", rep2.Codec, rep2.RelEB)
	}
	want := measured
	if want < 1 {
		want = 1
	}
	if math.Abs(rep2.Ratio-want)/want > 1e-9 {
		t.Fatalf("post-dump advice priced at ratio %g, want measured %g", rep2.Ratio, want)
	}
}
