package svc

import (
	"fmt"
	"testing"

	"lcpio/internal/ckpt"
	"lcpio/internal/container"
)

// TestWireCodecDumpRestoresByteIdentical is the compressed-wire acceptance
// check: a dump negotiated with --wire-codec ships framePutZ chunks, the
// daemon inflate-verifies every one, and the restored set is byte-identical
// to a plain dump of the same data.
func TestWireCodecDumpRestoresByteIdentical(t *testing.T) {
	srv := NewServer(Config{})
	if err := srv.AddTenant(TenantConfig{Name: "climate"}); err != nil {
		t.Fatal(err)
	}
	cl := startPair(t, srv)
	set := genSet("wire-z", 3, 5)
	res, err := cl.Dump("climate", set, DumpOptions{Workers: 2, WireCodec: "sz"})
	if err != nil {
		t.Fatalf("compressed-wire dump: %v", err)
	}
	if res.WireCodec != "sz" {
		t.Errorf("result wire codec %q, want sz", res.WireCodec)
	}
	if want := int64(set.Ranks * len(set.Fields)); res.WireVerifiedChunks != want {
		t.Errorf("verified %d chunks, want %d", res.WireVerifiedChunks, want)
	}
	if res.WireSavedSeconds <= 0 {
		t.Errorf("compressed wire saved %g s, want > 0", res.WireSavedSeconds)
	}
	restoreEqual(t, srv, "wire-z", set)

	// A plain dump of the same data must land the same payload bytes: the
	// wire codec changes framing and accounting, never stored content.
	plain := NewServer(Config{})
	if err := plain.AddTenant(TenantConfig{Name: "climate"}); err != nil {
		t.Fatal(err)
	}
	set2 := genSet("wire-p", 3, 5)
	res2, err := startPair(t, plain).Dump("climate", set2, DumpOptions{Workers: 2})
	if err != nil {
		t.Fatalf("plain dump: %v", err)
	}
	if res2.WireCodec != "" || res2.WireVerifiedChunks != 0 || res2.WireSavedSeconds != 0 {
		t.Errorf("plain dump carries wire accounting: %+v", res2)
	}
	if res.PayloadBytes != res2.PayloadBytes || res.SetBytes != res2.SetBytes {
		t.Errorf("wire codec changed stored bytes: %d/%d vs %d/%d",
			res.PayloadBytes, res.SetBytes, res2.PayloadBytes, res2.SetBytes)
	}
	if res.Joules != res2.Joules {
		t.Errorf("wire codec changed attributed energy: %g vs %g", res.Joules, res2.Joules)
	}
}

func TestWireCodecMismatchRejected(t *testing.T) {
	srv := NewServer(Config{})
	if err := srv.AddTenant(TenantConfig{Name: "climate"}); err != nil {
		t.Fatal(err)
	}
	cl := startPair(t, srv)
	set := genSet("wire-bad", 1, 1)
	if _, err := cl.Dump("climate", set, DumpOptions{WireCodec: "zfp"}); err == nil {
		t.Fatal("wire codec != set codec accepted")
	}
}

// TestPutZWithoutNegotiationRejected sends a compressed-wire chunk on a
// session that never negotiated one.
func TestPutZWithoutNegotiationRejected(t *testing.T) {
	srv := NewServer(Config{})
	if err := srv.AddTenant(TenantConfig{Name: "climate"}); err != nil {
		t.Fatal(err)
	}
	cl := startPair(t, srv)
	acc := openSession(t, cl, smallOpenReq("nz", ""))
	blob := smallBlob(t)
	if err := writeFrame(cl.rw, frame{Type: framePutZ, Session: acc.Session,
		Payload: encodePutZ(0, smallRawLen, blob)}); err != nil {
		t.Fatal(err)
	}
	rf, err := readFrame(cl.rw)
	if err != nil {
		t.Fatal(err)
	}
	if rf.Type != frameErr {
		t.Fatalf("putZ without negotiation got %v, want error", rf.Type)
	}
}

// TestPutZLengthLieRejected declares a raw length that disagrees with the
// session's field geometry, and one the blob does not inflate to.
func TestPutZLengthLieRejected(t *testing.T) {
	srv := NewServer(Config{})
	if err := srv.AddTenant(TenantConfig{Name: "climate"}); err != nil {
		t.Fatal(err)
	}
	cl := startPair(t, srv)
	acc := openSession(t, cl, smallOpenReq("lie", "sz"))
	blob := smallBlob(t)
	for _, lie := range []int64{smallRawLen + 4, smallRawLen * 2} {
		if err := writeFrame(cl.rw, frame{Type: framePutZ, Session: acc.Session,
			Payload: encodePutZ(0, lie, blob)}); err != nil {
			t.Fatal(err)
		}
		rf, err := readFrame(cl.rw)
		if err != nil {
			t.Fatal(err)
		}
		if rf.Type != frameErr {
			t.Fatalf("raw-length lie %d got %v, want error", lie, rf.Type)
		}
	}
	// A corrupted blob with the truthful length must fail inflate
	// verification rather than land on the medium.
	bad := append([]byte(nil), blob...)
	bad[len(bad)/2] ^= 0xff
	bad[len(bad)-1] ^= 0xff
	if err := writeFrame(cl.rw, frame{Type: framePutZ, Session: acc.Session,
		Payload: encodePutZ(0, smallRawLen, bad)}); err != nil {
		t.Fatal(err)
	}
	rf, err := readFrame(cl.rw)
	if err != nil {
		t.Fatal(err)
	}
	if rf.Type != frameErr {
		t.Fatalf("corrupt blob got %v, want error", rf.Type)
	}
}

// watermark reads the allocator bump pointer (test-only).
func (s *Server) watermark() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nextOff
}

const smallElems = 64
const smallRawLen = int64(smallElems) * 4

func smallOpenReq(name, wireCodec string) OpenRequest {
	return OpenRequest{
		Tenant: "climate", SetName: name, Codec: "sz", Ranks: 1,
		Fields:    []ckpt.FieldInfo{{Name: "p", Dims: []int{smallElems}, ErrorBound: 1e-3}},
		RelEB:     1e-3,
		WireCodec: wireCodec,
	}
}

func smallBlob(t *testing.T) []byte {
	t.Helper()
	data := make([]float32, smallElems)
	for i := range data {
		data[i] = float32(i) * 0.25
	}
	blob, err := container.Pack("sz", data, []int{smallElems}, 1e-3, container.Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

func openSession(t *testing.T, c *Client, req OpenRequest) OpenAccept {
	t.Helper()
	if err := writeFrame(c.rw, frame{Type: frameOpen, Payload: req.encode()}); err != nil {
		t.Fatal(err)
	}
	rf, err := readFrame(c.rw)
	if err != nil {
		t.Fatal(err)
	}
	if rf.Type != frameOpenOK {
		t.Fatalf("open %q: frame %v payload %s", req.SetName, rf.Type, rf.Payload)
	}
	acc, err := parseOpenAccept(rf.Payload)
	if err != nil {
		t.Fatal(err)
	}
	return acc
}

// finishSession streams the single chunk of a smallOpenReq session and
// closes it, returning the daemon's accounting.
func finishSession(t *testing.T, c *Client, acc OpenAccept) Result {
	t.Helper()
	if err := writeFrame(c.rw, frame{Type: framePut, Session: acc.Session,
		Payload: encodePut(0, smallBlob(t))}); err != nil {
		t.Fatal(err)
	}
	rf, err := readFrame(c.rw)
	if err != nil {
		t.Fatal(err)
	}
	if rf.Type != framePutOK {
		t.Fatalf("put: frame %v payload %s", rf.Type, rf.Payload)
	}
	if err := writeFrame(c.rw, frame{Type: frameClose, Session: acc.Session}); err != nil {
		t.Fatal(err)
	}
	if rf, err = readFrame(c.rw); err != nil {
		t.Fatal(err)
	}
	if rf.Type != frameCloseOK {
		t.Fatalf("close: frame %v payload %s", rf.Type, rf.Payload)
	}
	res, err := parseResult(rf.Payload)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// abortSession kills a session directly (the deterministic equivalent of
// the connection dying mid-dump).
func abortSession(t *testing.T, srv *Server, id uint32) {
	t.Helper()
	srv.mu.Lock()
	sess := srv.sessions[id]
	srv.mu.Unlock()
	if sess == nil {
		t.Fatalf("session %d not found", id)
	}
	srv.abort(sess)
}

// TestExtentReclaimOutOfOrderClose exercises the backward-coalescing
// allocator: sessions closing out of order record slack, and when the
// extents bordering the bump pointer finally free, the watermark retreats
// through every recorded hole in one walk.
func TestExtentReclaimOutOfOrderClose(t *testing.T) {
	srv := NewServer(Config{})
	if err := srv.AddTenant(TenantConfig{Name: "climate"}); err != nil {
		t.Fatal(err)
	}
	c1, c2, c3 := startPair(t, srv), startPair(t, srv), startPair(t, srv)

	acc1 := openSession(t, c1, smallOpenReq("s1", ""))
	acc2 := openSession(t, c2, smallOpenReq("s2", ""))
	acc3 := openSession(t, c3, smallOpenReq("s3", ""))
	if acc2.ExtentBase != acc1.ExtentBase+acc1.ExtentBytes ||
		acc3.ExtentBase != acc2.ExtentBase+acc2.ExtentBytes {
		t.Fatalf("extents not stacked: %d/%d %d/%d %d/%d",
			acc1.ExtentBase, acc1.ExtentBytes, acc2.ExtentBase, acc2.ExtentBytes,
			acc3.ExtentBase, acc3.ExtentBytes)
	}
	top := acc3.ExtentBase + acc3.ExtentBytes

	// Close s1 first: it is buried under s2 and s3, so its slack is only
	// recorded — the watermark cannot move yet.
	res1 := finishSession(t, c1, acc1)
	if res1.ExtentBytes >= acc1.ExtentBytes {
		t.Fatalf("finalized set %d B left no slack in extent %d B", res1.ExtentBytes, acc1.ExtentBytes)
	}
	if got := srv.watermark(); got != top {
		t.Fatalf("watermark moved to %d on a buried close, want %d", got, top)
	}

	// Abort s2 (still buried under s3): recorded, watermark still pinned.
	abortSession(t, srv, acc2.Session)
	if got := srv.watermark(); got != top {
		t.Fatalf("watermark moved to %d on a buried abort, want %d", got, top)
	}

	// Abort s3: now the pointer retreats through s3's whole extent, then
	// s2's recorded hole, and stops at s1's finalized tail.
	abortSession(t, srv, acc3.Session)
	want := acc1.ExtentBase + res1.ExtentBytes
	if got := srv.watermark(); got != want {
		t.Fatalf("watermark %d after coalescing walk, want %d", got, want)
	}

	// The next open reuses the reclaimed space behaviorally.
	acc4 := openSession(t, c2, smallOpenReq("s4", ""))
	if acc4.ExtentBase != want {
		t.Fatalf("new extent at %d, want reclaimed watermark %d", acc4.ExtentBase, want)
	}

	// Single-hop variant: a buried full close whose slack is consumed when
	// the topmost extent aborts; the walk stops at the finalized tail.
	acc5 := openSession(t, c3, smallOpenReq("s5", ""))
	res4 := finishSession(t, c2, acc4)
	abortSession(t, srv, acc5.Session)
	if got, want := srv.watermark(), acc4.ExtentBase+res4.ExtentBytes; got != want {
		t.Fatalf("single-hop watermark %d, want %d", got, want)
	}
}

// TestExtentReclaimManyOutOfOrder drives a longer random-ish close order
// and checks the invariant that once every session is gone, the watermark
// equals the top of the highest finalized set.
func TestExtentReclaimManyOutOfOrder(t *testing.T) {
	srv := NewServer(Config{})
	if err := srv.AddTenant(TenantConfig{Name: "climate"}); err != nil {
		t.Fatal(err)
	}
	const n = 6
	clients := make([]*Client, n)
	accs := make([]OpenAccept, n)
	for i := range clients {
		clients[i] = startPair(t, srv)
		accs[i] = openSession(t, clients[i], smallOpenReq(fmt.Sprintf("m%d", i), ""))
	}
	// Close the even sessions (keeping their sets resident), abort the odd
	// ones, in an interleaved non-stack order.
	results := make(map[int]Result)
	for _, i := range []int{2, 0, 4} {
		results[i] = finishSession(t, clients[i], accs[i])
	}
	for _, i := range []int{1, 5, 3} {
		abortSession(t, srv, accs[i].Session)
	}
	// Highest finalized set is m4: everything above its tail is free.
	want := accs[4].ExtentBase + results[4].ExtentBytes
	if got := srv.watermark(); got != want {
		t.Fatalf("watermark %d with all sessions resolved, want %d", got, want)
	}
}
