package svc

import (
	"errors"
	"fmt"
	"io"
	"net"

	"lcpio/internal/ckpt"
	"lcpio/internal/container"
	"lcpio/internal/stream"
)

// Client speaks the svc frame protocol over one byte-stream connection.
// A client runs at most one dump session at a time (the protocol is one
// request/reply pair in flight); run several Clients for concurrency.
type Client struct {
	rw io.ReadWriter
}

// NewClient wraps an established connection (any io.ReadWriter: a
// net.Conn, one end of net.Pipe, ...).
func NewClient(rw io.ReadWriter) *Client { return &Client{rw: rw} }

// Dial connects to a listening daemon.
func Dial(network, addr string) (*Client, net.Conn, error) {
	conn, err := net.Dial(network, addr)
	if err != nil {
		return nil, nil, err
	}
	return NewClient(conn), conn, nil
}

// DumpOptions tunes a client-side dump.
type DumpOptions struct {
	// Workers/QueueDepth/ChunkElems mirror ckpt.WriteOptions: the client
	// compresses chunks through the same pipelined streaming engine, but
	// drains them into PUT frames instead of a local medium.
	Workers    int
	QueueDepth int
	ChunkElems int
	// ProjectedRatio and DeadlineSeconds feed the daemon's admission
	// pricing (see OpenRequest).
	ProjectedRatio  float64
	DeadlineSeconds float64
	// WireCodec, when non-empty, negotiates compressed payload frames: each
	// chunk ships as a framePutZ declaring its raw size so the daemon can
	// inflate-verify it and credit the wire time saved. It must equal the
	// set's codec — the wire carries the same container blobs a plain dump
	// would, just accounted (and verified) as compressed transfers.
	WireCodec string
}

// Dump negotiates a session for set under the given tenant identity,
// streams its chunks, and returns the daemon's close-time accounting. An
// admission denial is returned as a *Reject error (errors.As-able); the
// set is not written.
func (c *Client) Dump(tenant string, set ckpt.Set, opts DumpOptions) (Result, error) {
	req := OpenRequest{
		Tenant:          tenant,
		SetName:         set.Name,
		Meta:            set.Meta,
		Codec:           set.Codec,
		Ranks:           set.Ranks,
		RelEB:           set.MeanRelEB(),
		ProjectedRatio:  opts.ProjectedRatio,
		DeadlineSeconds: opts.DeadlineSeconds,
		WireCodec:       opts.WireCodec,
	}
	return c.dump(set, req, opts)
}

func (c *Client) dump(set ckpt.Set, req OpenRequest, opts DumpOptions) (Result, error) {
	if req.WireCodec != "" && req.WireCodec != set.Codec {
		return Result{}, fmt.Errorf("svc: wire codec %q does not match set codec %q",
			req.WireCodec, set.Codec)
	}
	req.Fields = make([]ckpt.FieldInfo, len(set.Fields))
	for i, f := range set.Fields {
		req.Fields[i] = ckpt.FieldInfo{Name: f.Name, Dims: f.Dims, ErrorBound: f.ErrorBound}
	}
	if err := writeFrame(c.rw, frame{Type: frameOpen, Payload: req.encode()}); err != nil {
		return Result{}, err
	}
	rf, err := readFrame(c.rw)
	if err != nil {
		return Result{}, err
	}
	switch rf.Type {
	case frameOpenOK:
	case frameReject:
		rej, perr := parseReject(rf.Payload)
		if perr != nil {
			return Result{}, perr
		}
		return Result{}, &rej
	case frameErr:
		return Result{}, fmt.Errorf("svc: open failed: %s", rf.Payload)
	default:
		return Result{}, fmt.Errorf("%w: unexpected reply to open", ErrCorruptFrame)
	}
	acc, err := parseOpenAccept(rf.Payload)
	if err != nil {
		return Result{}, err
	}
	if acc.WireCodec != req.WireCodec {
		return Result{}, fmt.Errorf("%w: daemon echoed wire codec %q, negotiated %q",
			ErrCorruptFrame, acc.WireCodec, req.WireCodec)
	}
	sid := acc.Session

	// Compress chunks exactly like ckpt.Write — same engine, same per-lane
	// packer, rank-major index order — but the in-order drain ships PUT
	// frames instead of writing a local medium.
	nFields := len(set.Fields)
	n := set.Ranks * nFields
	eng := stream.Start(n, stream.Options{
		Name:    "svc.client",
		Workers: opts.Workers, QueueDepth: opts.QueueDepth,
	}, func(lane int) stream.ProduceFunc {
		packer, perr := container.NewPacker(set.Codec, container.Options{
			ChunkElems: opts.ChunkElems, Parallelism: 1,
		})
		return func(idx int) ([]byte, error) {
			if perr != nil {
				return nil, perr
			}
			f := &set.Fields[idx%nFields]
			return packer.Pack(f.Data[idx/nFields], f.Dims, f.ErrorBound)
		}
	})
	defer eng.Close()
	rawLens := make([]int64, nFields)
	for i, f := range set.Fields {
		elems := int64(1)
		for _, d := range f.Dims {
			elems *= int64(d)
		}
		rawLens[i] = elems * 4
	}
	err = eng.Drain(func(d stream.Item) error {
		if d.Err != nil {
			return fmt.Errorf("svc: chunk %d: %w", d.Idx, d.Err)
		}
		out := frame{Type: framePut, Session: sid, Payload: encodePut(d.Idx, d.Blob)}
		if req.WireCodec != "" {
			out = frame{Type: framePutZ, Session: sid,
				Payload: encodePutZ(d.Idx, rawLens[d.Idx%nFields], d.Blob)}
		}
		if err := writeFrame(c.rw, out); err != nil {
			return err
		}
		pf, err := readFrame(c.rw)
		if err != nil {
			return err
		}
		if pf.Type == frameErr {
			return fmt.Errorf("svc: put %d failed: %s", d.Idx, pf.Payload)
		}
		if pf.Type != framePutOK {
			return fmt.Errorf("%w: unexpected reply to put", ErrCorruptFrame)
		}
		pr, err := parsePutReply(pf.Payload)
		if err != nil {
			return err
		}
		if pr.Idx != d.Idx {
			return fmt.Errorf("%w: put ack for %d, want %d", ErrCorruptFrame, pr.Idx, d.Idx)
		}
		return nil
	})
	if err != nil {
		return Result{}, err
	}

	if err := writeFrame(c.rw, frame{Type: frameClose, Session: sid}); err != nil {
		return Result{}, err
	}
	cf, err := readFrame(c.rw)
	if err != nil {
		return Result{}, err
	}
	if cf.Type == frameErr {
		return Result{}, fmt.Errorf("svc: close failed: %s", cf.Payload)
	}
	if cf.Type != frameCloseOK {
		return Result{}, fmt.Errorf("%w: unexpected reply to close", ErrCorruptFrame)
	}
	return parseResult(cf.Payload)
}

// List fetches the daemon's finalized-set table.
func (c *Client) List() ([]SetEntry, error) {
	if err := writeFrame(c.rw, frame{Type: frameList}); err != nil {
		return nil, err
	}
	f, err := readFrame(c.rw)
	if err != nil {
		return nil, err
	}
	if f.Type == frameErr {
		return nil, fmt.Errorf("svc: list failed: %s", f.Payload)
	}
	if f.Type != frameListOK {
		return nil, fmt.Errorf("%w: unexpected reply to list", ErrCorruptFrame)
	}
	return parseSetEntries(f.Payload)
}

// Restore asks the daemon to restore and verify a finalized set
// server-side, returning the priced read profile.
func (c *Client) Restore(name string) (RestoreReply, error) {
	if err := writeFrame(c.rw, frame{Type: frameRestoreReq, Payload: encodeSetName(name)}); err != nil {
		return RestoreReply{}, err
	}
	f, err := readFrame(c.rw)
	if err != nil {
		return RestoreReply{}, err
	}
	if f.Type == frameErr {
		return RestoreReply{}, fmt.Errorf("svc: restore failed: %s", f.Payload)
	}
	if f.Type != frameRestoreOK {
		return RestoreReply{}, fmt.Errorf("%w: unexpected reply to restore", ErrCorruptFrame)
	}
	return parseRestoreReply(f.Payload)
}

// IsReject reports whether err is an admission denial and returns it.
func IsReject(err error) (*Reject, bool) {
	var rej *Reject
	if errors.As(err, &rej) {
		return rej, true
	}
	return nil, false
}
