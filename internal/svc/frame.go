// Package svc implements lcpiod, a long-running checkpoint service that
// accepts concurrent dump sessions from many tenants over a byte-stream
// transport and places them on one shared simulated medium.
//
// The daemon owns three scarce resources and makes all three visible to
// clients at session granularity:
//
//   - medium bandwidth — every admitted chunk rides a single shared
//     simulated NFS timeline, so a busy daemon queues writes and the
//     queue wait is reported per chunk (backpressure);
//   - medium space — sessions negotiate a contiguous extent at open,
//     subdivided per rank, and tenants have byte quotas;
//   - energy — admission is priced with the paper's Eqn 2 cost model at
//     the Eqn 3 tuned clocks before any payload byte moves: a session
//     whose projected joules exceed the tenant's budget, or whose
//     projected wall time misses its deadline, is rejected at open.
//
// The wire protocol is deliberately dumb: length-prefixed frames, one
// request/reply pair at a time per connection. Sets finalized by the
// daemon are format-identical to ckpt.Write output and restore through
// the unmodified ckpt.Restore path (see Server.OpenSet).
package svc

import (
	"errors"
	"fmt"
	"io"
	"math"

	"lcpio/internal/ckpt"
	"lcpio/internal/wire"
)

// Frame layout: magic(4) | type(1) | session(4) | payload length(4) |
// payload. Every request frame gets exactly one reply frame; the session
// id echoes the openOK-assigned id (0 before open and for sessionless
// requests such as list).
const (
	frameMagic    = 0x6c737663 // "lsvc"
	frameHdrLen   = 13
	maxPayloadLen = 64 << 20
)

type frameType uint8

const (
	frameInvalid    frameType = iota
	frameOpen                 // client → server: OpenRequest
	frameOpenOK               // server → client: OpenAccept
	frameReject               // server → client: Reject (admission denied)
	framePut                  // client → server: chunk index + blob
	framePutOK                // server → client: PutReply
	frameClose                // client → server: finalize session
	frameCloseOK              // server → client: Result
	frameList                 // client → server: enumerate finalized sets
	frameListOK               // server → client: SetEntry list
	frameRestoreReq           // client → server: set name (server-side restore)
	frameRestoreOK            // server → client: RestoreReply
	frameErr                  // server → client: protocol/session error string
	framePutZ                 // client → server: compressed-wire chunk (idx + raw length + blob)
	frameAdvise               // client → server: AdviseRequest (sessionless)
	frameAdviseOK             // server → client: AdviseReply
	frameTypeEnd
)

// ErrCorruptFrame is returned for malformed frames and payloads.
var ErrCorruptFrame = errors.New("svc: corrupt frame")

type frame struct {
	Type    frameType
	Session uint32
	Payload []byte
}

func appendFrame(b []byte, f frame) []byte {
	b = wire.AppendUint32(b, frameMagic)
	b = append(b, byte(f.Type))
	b = wire.AppendUint32(b, f.Session)
	b = wire.AppendUint32(b, uint32(len(f.Payload)))
	return append(b, f.Payload...)
}

func writeFrame(w io.Writer, f frame) error {
	if len(f.Payload) > maxPayloadLen {
		return fmt.Errorf("svc: frame payload %d exceeds cap %d", len(f.Payload), maxPayloadLen)
	}
	_, err := w.Write(appendFrame(make([]byte, 0, frameHdrLen+len(f.Payload)), f))
	return err
}

// readFrame reads exactly one frame from r, refusing oversized payloads
// before allocating them.
func readFrame(r io.Reader) (frame, error) {
	var hdr [frameHdrLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return frame{}, err
	}
	f, n, err := parseFrameHeader(hdr[:])
	if err != nil {
		return frame{}, err
	}
	if n > 0 {
		f.Payload = make([]byte, n)
		if _, err := io.ReadFull(r, f.Payload); err != nil {
			return frame{}, fmt.Errorf("svc: truncated frame payload: %w", err)
		}
	}
	return f, nil
}

// parseFrameHeader decodes a frame header and returns the declared payload
// length without consuming it.
func parseFrameHeader(b []byte) (frame, int, error) {
	rd := wire.NewReader(b, ErrCorruptFrame)
	magic := rd.Uint32()
	ft := frameType(rd.Bytes(1)[0])
	sess := rd.Uint32()
	n := rd.Uint32()
	if rd.Err() != nil || magic != frameMagic {
		return frame{}, 0, ErrCorruptFrame
	}
	if ft == frameInvalid || ft >= frameTypeEnd {
		return frame{}, 0, fmt.Errorf("%w: unknown frame type %d", ErrCorruptFrame, ft)
	}
	if n > maxPayloadLen {
		return frame{}, 0, fmt.Errorf("%w: payload length %d exceeds cap", ErrCorruptFrame, n)
	}
	return frame{Type: ft, Session: sess}, int(n), nil
}

// ParseFrame decodes one complete frame from the head of b and returns it
// with the number of bytes consumed. It is the entry point the wire-framing
// fuzz target drives: any input must either parse or fail cleanly, never
// over-allocate, and re-encode to the consumed bytes.
func ParseFrame(b []byte) (frame, int, error) {
	if len(b) < frameHdrLen {
		return frame{}, 0, fmt.Errorf("%w: short header", ErrCorruptFrame)
	}
	f, n, err := parseFrameHeader(b[:frameHdrLen])
	if err != nil {
		return frame{}, 0, err
	}
	if len(b) < frameHdrLen+n {
		return frame{}, 0, fmt.Errorf("%w: truncated payload", ErrCorruptFrame)
	}
	f.Payload = b[frameHdrLen : frameHdrLen+n]
	return f, frameHdrLen + n, nil
}

// Payload caps, aligned with the ckpt format's parse limits so anything the
// daemon admits is also storable.
const (
	maxNameLen = 256
	maxMetaLen = 1 << 12
	maxRanks   = 1 << 16
	maxFields  = 1 << 12
	maxDims    = 8
	maxDim     = 1 << 30
	maxRawB    = int64(1) << 40
)

// OpenRequest negotiates a dump session: who is asking, the set geometry
// (which fixes the raw byte count and per-rank extent need), and the
// pricing inputs the server cannot derive on its own.
type OpenRequest struct {
	Tenant  string
	SetName string
	Meta    string
	Codec   string
	Ranks   int
	Fields  []ckpt.FieldInfo
	// RelEB is the payload-weighted range-relative error bound
	// (ckpt.Set.MeanRelEB) — data-dependent, so the client ships it.
	RelEB float64
	// ProjectedRatio is the client's expected compression ratio; 0 takes
	// the server default. Admission pricing and extent sizing use it.
	ProjectedRatio float64
	// DeadlineSeconds bounds the projected dump wall time (Eqn 2 seconds
	// at the tuned clocks); 0 means no deadline.
	DeadlineSeconds float64
	// WireCodec, when non-empty, negotiates compressed payload frames
	// (framePutZ): chunks arrive as codec blobs with a declared raw length
	// and the daemon inflates them at the wire boundary to verify
	// integrity before storing the blob byte-identically. Must equal Codec
	// — the wire carries the same container blobs a plain session ships,
	// just accounted (and verified) as compressed transfers.
	WireCodec string
}

// RawBytes returns the total uncompressed input size the request describes.
func (r OpenRequest) RawBytes() int64 {
	var n int64
	for _, f := range r.Fields {
		n += int64(f.Elems()) * 4 * int64(r.Ranks)
	}
	return n
}

func (r OpenRequest) encode() []byte {
	var b []byte
	b = appendString(b, r.Tenant)
	b = appendString(b, r.SetName)
	b = appendString(b, r.Meta)
	b = appendString(b, r.Codec)
	b = wire.AppendUint32(b, uint32(r.Ranks))
	b = wire.AppendUint32(b, uint32(len(r.Fields)))
	for _, f := range r.Fields {
		b = appendString(b, f.Name)
		b = wire.AppendUint32(b, uint32(len(f.Dims)))
		for _, d := range f.Dims {
			b = wire.AppendUint64(b, uint64(d))
		}
		b = wire.AppendFloat64(b, f.ErrorBound)
	}
	b = wire.AppendFloat64(b, r.RelEB)
	b = wire.AppendFloat64(b, r.ProjectedRatio)
	b = wire.AppendFloat64(b, r.DeadlineSeconds)
	b = appendString(b, r.WireCodec)
	return b
}

// parseOpenRequest validates geometry hard enough that arithmetic on it
// downstream (extent sizing, quota math) cannot overflow: every dimension,
// the per-rank element product, and the total raw size are capped.
func parseOpenRequest(b []byte) (OpenRequest, error) {
	rd := wire.NewReader(b, ErrCorruptFrame)
	var r OpenRequest
	var ok bool
	if r.Tenant, ok = readString(&rd, maxNameLen); !ok || r.Tenant == "" {
		return r, fmt.Errorf("%w: tenant name", ErrCorruptFrame)
	}
	if r.SetName, ok = readString(&rd, maxNameLen); !ok || r.SetName == "" {
		return r, fmt.Errorf("%w: set name", ErrCorruptFrame)
	}
	if r.Meta, ok = readString(&rd, maxMetaLen); !ok {
		return r, fmt.Errorf("%w: meta", ErrCorruptFrame)
	}
	if r.Codec, ok = readString(&rd, maxNameLen); !ok || r.Codec == "" {
		return r, fmt.Errorf("%w: codec", ErrCorruptFrame)
	}
	r.Ranks = int(rd.Uint32())
	nf := int(rd.Uint32())
	if rd.Err() != nil || r.Ranks <= 0 || r.Ranks > maxRanks || nf <= 0 || nf > maxFields {
		return r, fmt.Errorf("%w: geometry", ErrCorruptFrame)
	}
	r.Fields = make([]ckpt.FieldInfo, nf)
	var raw int64
	for i := range r.Fields {
		f := &r.Fields[i]
		if f.Name, ok = readString(&rd, maxNameLen); !ok || f.Name == "" {
			return r, fmt.Errorf("%w: field name", ErrCorruptFrame)
		}
		nd := int(rd.Uint32())
		if rd.Err() != nil || nd <= 0 || nd > maxDims {
			return r, fmt.Errorf("%w: field dims", ErrCorruptFrame)
		}
		f.Dims = make([]int, nd)
		elems := int64(1)
		for j := range f.Dims {
			d := rd.Uint64()
			if rd.Err() != nil || d == 0 || d > maxDim {
				return r, fmt.Errorf("%w: dimension", ErrCorruptFrame)
			}
			f.Dims[j] = int(d)
			if elems *= int64(d); elems > maxRawB {
				return r, fmt.Errorf("%w: field too large", ErrCorruptFrame)
			}
		}
		f.ErrorBound = rd.Float64()
		if !(f.ErrorBound > 0) || math.IsInf(f.ErrorBound, 0) {
			return r, fmt.Errorf("%w: error bound", ErrCorruptFrame)
		}
		raw += elems * 4 * int64(r.Ranks)
		if raw > maxRawB {
			return r, fmt.Errorf("%w: set too large", ErrCorruptFrame)
		}
	}
	r.RelEB = rd.Float64()
	r.ProjectedRatio = rd.Float64()
	r.DeadlineSeconds = rd.Float64()
	if r.WireCodec, ok = readString(&rd, maxNameLen); !ok {
		return r, fmt.Errorf("%w: wire codec", ErrCorruptFrame)
	}
	if rd.Err() != nil || rd.Remaining() != 0 {
		return r, fmt.Errorf("%w: trailing bytes", ErrCorruptFrame)
	}
	if r.WireCodec != "" && r.WireCodec != r.Codec {
		return r, fmt.Errorf("%w: wire codec %q disagrees with set codec %q",
			ErrCorruptFrame, r.WireCodec, r.Codec)
	}
	if !(r.RelEB > 0) || r.RelEB > 1 ||
		r.ProjectedRatio < 0 || math.IsInf(r.ProjectedRatio, 0) || math.IsNaN(r.ProjectedRatio) ||
		r.DeadlineSeconds < 0 || math.IsInf(r.DeadlineSeconds, 0) || math.IsNaN(r.DeadlineSeconds) {
		return r, fmt.Errorf("%w: pricing inputs", ErrCorruptFrame)
	}
	return r, nil
}

// OpenAccept is the server's half of a successful negotiation: where the
// session's extent landed and what the admission decision cost.
type OpenAccept struct {
	Session uint32
	// ExtentBase/ExtentBytes is the contiguous region reserved on the
	// shared medium; RankStride subdivides it per rank.
	ExtentBase  int64
	ExtentBytes int64
	RankStride  int64
	// ProjectedJoules is the Eqn 2 admission price quoted at open.
	ProjectedJoules float64
	// AdmissionWaitSeconds is wall time spent queued for a session slot
	// or quota headroom before admission.
	AdmissionWaitSeconds float64
	// WireCodec echoes the negotiated compressed-wire codec ("" when the
	// session ships plain frames).
	WireCodec string
}

func (a OpenAccept) encode() []byte {
	var b []byte
	b = wire.AppendUint32(b, a.Session)
	b = wire.AppendUint64(b, uint64(a.ExtentBase))
	b = wire.AppendUint64(b, uint64(a.ExtentBytes))
	b = wire.AppendUint64(b, uint64(a.RankStride))
	b = wire.AppendFloat64(b, a.ProjectedJoules)
	b = wire.AppendFloat64(b, a.AdmissionWaitSeconds)
	b = appendString(b, a.WireCodec)
	return b
}

func parseOpenAccept(b []byte) (OpenAccept, error) {
	rd := wire.NewReader(b, ErrCorruptFrame)
	a := OpenAccept{
		Session:     rd.Uint32(),
		ExtentBase:  int64(rd.Uint64()),
		ExtentBytes: int64(rd.Uint64()),
		RankStride:  int64(rd.Uint64()),
	}
	a.ProjectedJoules = rd.Float64()
	a.AdmissionWaitSeconds = rd.Float64()
	wc, ok := readString(&rd, maxNameLen)
	if !ok || rd.Err() != nil || rd.Remaining() != 0 ||
		a.ExtentBase < 0 || a.ExtentBytes < 0 || a.RankStride < 0 {
		return a, fmt.Errorf("%w: open accept", ErrCorruptFrame)
	}
	a.WireCodec = wc
	return a, nil
}

// RejectCode classifies why admission was denied.
type RejectCode uint8

const (
	RejectUnknown RejectCode = iota
	// RejectEnergy: projected joules exceed the tenant's per-session
	// energy budget.
	RejectEnergy
	// RejectDeadline: projected wall time at the tuned clocks misses the
	// requested deadline.
	RejectDeadline
	// RejectQuota: the tenant's byte quota cannot fit the extent even
	// after every in-flight reservation resolves.
	RejectQuota
	// RejectCapacity: the shared medium has no room for the extent.
	RejectCapacity
	// RejectTenant: the tenant is not registered with the daemon.
	RejectTenant
	rejectCodeEnd
)

func (c RejectCode) String() string {
	switch c {
	case RejectEnergy:
		return "energy budget"
	case RejectDeadline:
		return "deadline"
	case RejectQuota:
		return "quota"
	case RejectCapacity:
		return "capacity"
	case RejectTenant:
		return "unknown tenant"
	}
	return "unknown"
}

// Reject is the admission-denied reply; it carries the price that sank the
// request so clients can re-plan (smaller set, looser bound, later retry).
type Reject struct {
	Code            RejectCode
	Detail          string
	ProjectedJoules float64
	BudgetJoules    float64
}

// Error makes a Reject usable as the client-side error.
func (r *Reject) Error() string {
	return fmt.Sprintf("svc: admission rejected (%s): %s", r.Code, r.Detail)
}

func (r Reject) encode() []byte {
	var b []byte
	b = append(b, byte(r.Code))
	b = appendString(b, r.Detail)
	b = wire.AppendFloat64(b, r.ProjectedJoules)
	b = wire.AppendFloat64(b, r.BudgetJoules)
	return b
}

func parseReject(b []byte) (Reject, error) {
	rd := wire.NewReader(b, ErrCorruptFrame)
	var r Reject
	code := rd.Bytes(1)
	if rd.Err() != nil || RejectCode(code[0]) == RejectUnknown || RejectCode(code[0]) >= rejectCodeEnd {
		return r, fmt.Errorf("%w: reject code", ErrCorruptFrame)
	}
	r.Code = RejectCode(code[0])
	var ok bool
	if r.Detail, ok = readString(&rd, maxMetaLen); !ok {
		return r, fmt.Errorf("%w: reject detail", ErrCorruptFrame)
	}
	r.ProjectedJoules = rd.Float64()
	r.BudgetJoules = rd.Float64()
	if rd.Err() != nil || rd.Remaining() != 0 {
		return r, fmt.Errorf("%w: reject", ErrCorruptFrame)
	}
	return r, nil
}

// putHdrLen prefixes a PUT payload: chunk index, then the blob bytes.
const putHdrLen = 4

func encodePut(idx int, blob []byte) []byte {
	b := make([]byte, 0, putHdrLen+len(blob))
	b = wire.AppendUint32(b, uint32(idx))
	return append(b, blob...)
}

func parsePut(b []byte) (idx int, blob []byte, err error) {
	rd := wire.NewReader(b, ErrCorruptFrame)
	i := rd.Uint32()
	if rd.Err() != nil {
		return 0, nil, fmt.Errorf("%w: put header", ErrCorruptFrame)
	}
	return int(i), b[putHdrLen:], nil
}

// putZHdrLen prefixes a compressed-wire PUT payload: chunk index, the
// inflated (raw float) byte length the blob claims to decode to, then the
// blob bytes.
const putZHdrLen = putHdrLen + 8

// encodePutZ frames a compressed-wire chunk.
func encodePutZ(idx int, rawLen int64, blob []byte) []byte {
	b := make([]byte, 0, putZHdrLen+len(blob))
	b = wire.AppendUint32(b, uint32(idx))
	b = wire.AppendUint64(b, uint64(rawLen))
	return append(b, blob...)
}

// parsePutZ decodes a compressed-wire chunk header. The declared raw
// length is a hostile input: it is capped here, re-checked against the
// session's field geometry before any inflation, and finally compared to
// the actual inflated size — a lying length field can therefore never
// drive an allocation larger than the geometry the session negotiated.
func parsePutZ(b []byte) (idx int, rawLen int64, blob []byte, err error) {
	rd := wire.NewReader(b, ErrCorruptFrame)
	i := rd.Uint32()
	n := int64(rd.Uint64())
	if rd.Err() != nil {
		return 0, 0, nil, fmt.Errorf("%w: putz header", ErrCorruptFrame)
	}
	if n <= 0 || n > maxRawB || n%4 != 0 {
		return 0, 0, nil, fmt.Errorf("%w: putz raw length %d", ErrCorruptFrame, n)
	}
	blob = b[putZHdrLen:]
	if len(blob) == 0 {
		return 0, 0, nil, fmt.Errorf("%w: putz empty blob", ErrCorruptFrame)
	}
	return int(i), n, blob, nil
}

// PutReply acknowledges one chunk with its slice of the shared-medium
// timeline: how long the chunk sat queued behind other tenants' writes,
// and whether that wait crossed the saturation window (backpressure).
type PutReply struct {
	Idx              int
	QueueWaitSeconds float64
	Backpressure     bool
}

func (p PutReply) encode() []byte {
	var b []byte
	b = wire.AppendUint32(b, uint32(p.Idx))
	b = wire.AppendFloat64(b, p.QueueWaitSeconds)
	flag := byte(0)
	if p.Backpressure {
		flag = 1
	}
	return append(b, flag)
}

func parsePutReply(b []byte) (PutReply, error) {
	rd := wire.NewReader(b, ErrCorruptFrame)
	var p PutReply
	p.Idx = int(rd.Uint32())
	p.QueueWaitSeconds = rd.Float64()
	flag := rd.Bytes(1)
	if rd.Err() != nil || rd.Remaining() != 0 || flag[0] > 1 {
		return p, fmt.Errorf("%w: put reply", ErrCorruptFrame)
	}
	p.Backpressure = flag[0] == 1
	return p, nil
}

// Result is the closeOK payload: everything the session cost, attributed
// at the paper's tuned clocks. CompressJoules + TransitJoules == Joules,
// and the split reconciles with a phases.CheckpointCampaign of the same
// set to well under the 1% acceptance bar (the daemon prices the same
// workloads at the same clocks).
type Result struct {
	SetBytes     int64 // header + payload + manifest + footer (bytes moved)
	PayloadBytes int64
	RawBytes     int64
	Chunks       int
	// Energy attribution (Eqn 2 at the Eqn 3 clocks).
	CompressJoules float64
	TransitJoules  float64
	Joules         float64
	// SimSeconds is the session's simulated makespan: compress pipeline
	// plus its serialized share of the medium. QueueWaitSeconds is the
	// part spent blocked behind other sessions' writes.
	QueueWaitSeconds   float64
	SimSeconds         float64
	BackpressureEvents int64
	// GoodputBps is payload bits landed per simulated second.
	GoodputBps float64
	// Extent placement (matches the OpenAccept negotiation; ExtentBytes
	// shrinks to the finalized set size, the slack is refunded).
	ExtentBase  int64
	ExtentBytes int64
	// AdmissionWaitSeconds echoes the open-time queue wait (wall time).
	AdmissionWaitSeconds float64
	// WireCodec is the negotiated compressed-wire codec ("" for plain
	// sessions); WireSavedSeconds is the shared-medium transfer time the
	// compressed frames saved over shipping the raw floats, and
	// WireVerifiedChunks counts putZ chunks the daemon inflated and
	// verified at the wire boundary.
	WireCodec          string
	WireSavedSeconds   float64
	WireVerifiedChunks int64
}

func (r Result) encode() []byte {
	var b []byte
	b = wire.AppendUint64(b, uint64(r.SetBytes))
	b = wire.AppendUint64(b, uint64(r.PayloadBytes))
	b = wire.AppendUint64(b, uint64(r.RawBytes))
	b = wire.AppendUint32(b, uint32(r.Chunks))
	b = wire.AppendFloat64(b, r.CompressJoules)
	b = wire.AppendFloat64(b, r.TransitJoules)
	b = wire.AppendFloat64(b, r.Joules)
	b = wire.AppendFloat64(b, r.QueueWaitSeconds)
	b = wire.AppendFloat64(b, r.SimSeconds)
	b = wire.AppendUint64(b, uint64(r.BackpressureEvents))
	b = wire.AppendFloat64(b, r.GoodputBps)
	b = wire.AppendUint64(b, uint64(r.ExtentBase))
	b = wire.AppendUint64(b, uint64(r.ExtentBytes))
	b = wire.AppendFloat64(b, r.AdmissionWaitSeconds)
	b = appendString(b, r.WireCodec)
	b = wire.AppendFloat64(b, r.WireSavedSeconds)
	b = wire.AppendUint64(b, uint64(r.WireVerifiedChunks))
	return b
}

func parseResult(b []byte) (Result, error) {
	rd := wire.NewReader(b, ErrCorruptFrame)
	var r Result
	r.SetBytes = int64(rd.Uint64())
	r.PayloadBytes = int64(rd.Uint64())
	r.RawBytes = int64(rd.Uint64())
	r.Chunks = int(rd.Uint32())
	r.CompressJoules = rd.Float64()
	r.TransitJoules = rd.Float64()
	r.Joules = rd.Float64()
	r.QueueWaitSeconds = rd.Float64()
	r.SimSeconds = rd.Float64()
	r.BackpressureEvents = int64(rd.Uint64())
	r.GoodputBps = rd.Float64()
	r.ExtentBase = int64(rd.Uint64())
	r.ExtentBytes = int64(rd.Uint64())
	r.AdmissionWaitSeconds = rd.Float64()
	wc, ok := readString(&rd, maxNameLen)
	r.WireSavedSeconds = rd.Float64()
	r.WireVerifiedChunks = int64(rd.Uint64())
	if !ok || rd.Err() != nil || rd.Remaining() != 0 ||
		r.SetBytes < 0 || r.PayloadBytes < 0 || r.RawBytes < 0 || r.Chunks < 0 ||
		r.WireVerifiedChunks < 0 {
		return r, fmt.Errorf("%w: result", ErrCorruptFrame)
	}
	r.WireCodec = wc
	return r, nil
}

// SetEntry is one row of a list reply.
type SetEntry struct {
	Name    string
	Tenant  string
	Bytes   int64
	Joules  float64
	RawByte int64
}

func encodeSetEntries(entries []SetEntry) []byte {
	var b []byte
	b = wire.AppendUint32(b, uint32(len(entries)))
	for _, e := range entries {
		b = appendString(b, e.Name)
		b = appendString(b, e.Tenant)
		b = wire.AppendUint64(b, uint64(e.Bytes))
		b = wire.AppendFloat64(b, e.Joules)
		b = wire.AppendUint64(b, uint64(e.RawByte))
	}
	return b
}

func parseSetEntries(b []byte) ([]SetEntry, error) {
	rd := wire.NewReader(b, ErrCorruptFrame)
	n := int(rd.Uint32())
	if rd.Err() != nil || n < 0 || n > 1<<20 {
		return nil, fmt.Errorf("%w: list count", ErrCorruptFrame)
	}
	entries := make([]SetEntry, 0, min(n, 1024))
	for i := 0; i < n; i++ {
		var e SetEntry
		var ok bool
		if e.Name, ok = readString(&rd, maxNameLen); !ok {
			return nil, fmt.Errorf("%w: list name", ErrCorruptFrame)
		}
		if e.Tenant, ok = readString(&rd, maxNameLen); !ok {
			return nil, fmt.Errorf("%w: list tenant", ErrCorruptFrame)
		}
		e.Bytes = int64(rd.Uint64())
		e.Joules = rd.Float64()
		e.RawByte = int64(rd.Uint64())
		if rd.Err() != nil {
			return nil, fmt.Errorf("%w: list entry", ErrCorruptFrame)
		}
		entries = append(entries, e)
	}
	if rd.Remaining() != 0 {
		return nil, fmt.Errorf("%w: list trailing bytes", ErrCorruptFrame)
	}
	return entries, nil
}

// RestoreReply summarizes a server-side restore+verify of a finalized set:
// the daemon reads the set back through the shared medium (including any
// cache-eviction read penalties) and prices the read at the tuned clock.
type RestoreReply struct {
	Chunks          int
	RawBytes        int64
	SimReadSeconds  float64
	ReadJoules      float64
	DecompressRatio float64
}

func (r RestoreReply) encode() []byte {
	var b []byte
	b = wire.AppendUint32(b, uint32(r.Chunks))
	b = wire.AppendUint64(b, uint64(r.RawBytes))
	b = wire.AppendFloat64(b, r.SimReadSeconds)
	b = wire.AppendFloat64(b, r.ReadJoules)
	b = wire.AppendFloat64(b, r.DecompressRatio)
	return b
}

func parseRestoreReply(b []byte) (RestoreReply, error) {
	rd := wire.NewReader(b, ErrCorruptFrame)
	var r RestoreReply
	r.Chunks = int(rd.Uint32())
	r.RawBytes = int64(rd.Uint64())
	r.SimReadSeconds = rd.Float64()
	r.ReadJoules = rd.Float64()
	r.DecompressRatio = rd.Float64()
	if rd.Err() != nil || rd.Remaining() != 0 || r.Chunks < 0 || r.RawBytes < 0 {
		return r, fmt.Errorf("%w: restore reply", ErrCorruptFrame)
	}
	return r, nil
}

func encodeSetName(name string) []byte { return appendString(nil, name) }

func parseSetName(b []byte) (string, bool) {
	rd := wire.NewReader(b, ErrCorruptFrame)
	name, ok := readString(&rd, maxNameLen)
	return name, ok && name != "" && rd.Remaining() == 0
}

func appendString(b []byte, s string) []byte {
	b = wire.AppendUint32(b, uint32(len(s)))
	return append(b, s...)
}

func readString(rd *wire.Reader, limit int) (string, bool) {
	n := int(rd.Uint32())
	if rd.Err() != nil || n < 0 || n > limit {
		return "", false
	}
	b := rd.Bytes(n)
	if rd.Err() != nil {
		return "", false
	}
	return string(b), true
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
