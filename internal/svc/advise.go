package svc

import (
	"fmt"
	"math"

	"lcpio/internal/advisor"
	"lcpio/internal/compress"
	"lcpio/internal/wire"
)

// AdviseRequest asks the daemon, before any data exists client-side, which
// (codec, bound) it should dump with. The daemon never sees the field, so
// quality screening uses the calibrated data-independent PSNR estimate
// (advisor.TheoreticalPSNR) and pricing uses the tenant's own measured
// compression-ratio history (fed by every finalized session) with the
// server default as the prior.
type AdviseRequest struct {
	Tenant string
	// RawBytes is the uncompressed dump size to price.
	RawBytes int64
	// DeadlineSeconds bounds the projected dump wall time (0 = none).
	DeadlineSeconds float64
	// MinPSNR is the quality floor in dB (0 = none).
	MinPSNR float64
}

func (r AdviseRequest) encode() []byte {
	b := appendString(nil, r.Tenant)
	b = wire.AppendUint64(b, uint64(r.RawBytes))
	b = wire.AppendFloat64(b, r.DeadlineSeconds)
	b = wire.AppendFloat64(b, r.MinPSNR)
	return b
}

func parseAdviseRequest(b []byte) (AdviseRequest, error) {
	rd := wire.NewReader(b, ErrCorruptFrame)
	var r AdviseRequest
	var ok bool
	if r.Tenant, ok = readString(&rd, maxNameLen); !ok || r.Tenant == "" {
		return r, fmt.Errorf("%w: advise tenant", ErrCorruptFrame)
	}
	r.RawBytes = int64(rd.Uint64())
	r.DeadlineSeconds = rd.Float64()
	r.MinPSNR = rd.Float64()
	if rd.Err() != nil || rd.Remaining() != 0 {
		return r, fmt.Errorf("%w: advise request", ErrCorruptFrame)
	}
	if r.RawBytes <= 0 || r.RawBytes > maxRawB ||
		r.DeadlineSeconds < 0 || math.IsInf(r.DeadlineSeconds, 0) || math.IsNaN(r.DeadlineSeconds) ||
		r.MinPSNR < 0 || math.IsInf(r.MinPSNR, 0) || math.IsNaN(r.MinPSNR) {
		return r, fmt.Errorf("%w: advise bounds", ErrCorruptFrame)
	}
	return r, nil
}

// AdviseReply is the daemon's pick. When no candidate satisfies every
// constraint, Admissible is false and the reply carries the closest
// candidate plus the Reason it falls short — the client can loosen its
// floor or deadline and ask again.
type AdviseReply struct {
	Codec string
	RelEB float64
	// Ratio is the compression ratio the pick was priced at: the tenant's
	// smoothed measured history for this (codec, bound decade), or the
	// server default when the tenant has no history there.
	Ratio       float64
	ProjJoules  float64
	ProjSeconds float64
	Admissible  bool
	Reason      string
}

func (r AdviseReply) encode() []byte {
	b := appendString(nil, r.Codec)
	b = wire.AppendFloat64(b, r.RelEB)
	b = wire.AppendFloat64(b, r.Ratio)
	b = wire.AppendFloat64(b, r.ProjJoules)
	b = wire.AppendFloat64(b, r.ProjSeconds)
	flag := byte(0)
	if r.Admissible {
		flag = 1
	}
	b = append(b, flag)
	return appendString(b, r.Reason)
}

func parseAdviseReply(b []byte) (AdviseReply, error) {
	rd := wire.NewReader(b, ErrCorruptFrame)
	var r AdviseReply
	var ok bool
	if r.Codec, ok = readString(&rd, maxNameLen); !ok || r.Codec == "" {
		return r, fmt.Errorf("%w: advise codec", ErrCorruptFrame)
	}
	r.RelEB = rd.Float64()
	r.Ratio = rd.Float64()
	r.ProjJoules = rd.Float64()
	r.ProjSeconds = rd.Float64()
	flag := rd.Bytes(1)
	if rd.Err() != nil || flag[0] > 1 {
		return r, fmt.Errorf("%w: advise reply", ErrCorruptFrame)
	}
	r.Admissible = flag[0] == 1
	if r.Reason, ok = readString(&rd, maxMetaLen); !ok || rd.Remaining() != 0 {
		return r, fmt.Errorf("%w: advise reason", ErrCorruptFrame)
	}
	if !(r.RelEB > 0) || r.RelEB > 1 || !(r.Ratio >= 1) || math.IsInf(r.Ratio, 0) {
		return r, fmt.Errorf("%w: advise pick", ErrCorruptFrame)
	}
	return r, nil
}

// adviseCodecs are the candidates the daemon sweeps; both have sketch
// calibration entries so TheoreticalPSNR can screen them blind.
var adviseCodecs = []string{"sz", "zfp"}

// advise sweeps (codec × paper bound) for the cheapest projected dump that
// clears the tenant's floor, deadline, and energy budget, priced with the
// same Eqn 2 admission machinery a real open would face. Each candidate's
// ratio comes from the tenant's measured history (RatioTracker, fed by
// closeSession) so repeated dumps sharpen the advice.
func (s *Server) advise(req AdviseRequest) (AdviseReply, error) {
	s.mu.Lock()
	ten := s.tenants[req.Tenant]
	s.mu.Unlock()
	if ten == nil {
		return AdviseReply{}, fmt.Errorf("svc: tenant %q not registered", req.Tenant)
	}
	budget := ten.cfg.EnergyBudgetJoules

	var pick, fallback AdviseReply
	havePick, haveFallback := false, false
	bestPSNR := math.Inf(-1)
	var bestPSNRCand AdviseReply
	for _, codec := range adviseCodecs {
		for _, eb := range compress.PaperErrorBounds {
			psnr, err := advisor.TheoreticalPSNR(codec, eb)
			if err != nil {
				return AdviseReply{}, err
			}
			ratio := ten.ratios.Estimate(codec, eb, s.cfg.DefaultRatio)
			if !(ratio >= 1) {
				ratio = 1 // incompressible history: price a raw-size dump
			}
			projJ, projSec, err := s.priceRaw(codec, eb, req.RawBytes, 0, ratio)
			if err != nil {
				return AdviseReply{}, err
			}
			cand := AdviseReply{
				Codec: codec, RelEB: eb, Ratio: ratio,
				ProjJoules: projJ, ProjSeconds: projSec,
			}
			if psnr > bestPSNR {
				bestPSNR, bestPSNRCand = psnr, cand
			}
			if req.MinPSNR > 0 && psnr < req.MinPSNR {
				continue
			}
			// Quality clears; track the cheapest such candidate as the
			// fallback reply even if deadline/budget sink it.
			if !haveFallback || cand.ProjJoules < fallback.ProjJoules {
				fallback, haveFallback = cand, true
			}
			if req.DeadlineSeconds > 0 && projSec > req.DeadlineSeconds {
				continue
			}
			if budget > 0 && projJ > budget {
				continue
			}
			if !havePick || cand.ProjJoules < pick.ProjJoules {
				pick, havePick = cand, true
			}
		}
	}
	switch {
	case havePick:
		pick.Admissible = true
		return pick, nil
	case haveFallback:
		switch {
		case req.DeadlineSeconds > 0 && fallback.ProjSeconds > req.DeadlineSeconds:
			fallback.Reason = fmt.Sprintf("projected %.3f s misses deadline %.3f s",
				fallback.ProjSeconds, req.DeadlineSeconds)
		default:
			fallback.Reason = fmt.Sprintf("projected %.1f J exceeds budget %.1f J",
				fallback.ProjJoules, budget)
		}
		return fallback, nil
	default:
		bestPSNRCand.Reason = fmt.Sprintf(
			"no codec/bound reaches the %.1f dB floor; best is %s at eb=%g with %.1f dB",
			req.MinPSNR, bestPSNRCand.Codec, bestPSNRCand.RelEB, bestPSNR)
		return bestPSNRCand, nil
	}
}

// Advise asks the daemon for the cheapest admissible (codec, bound) for a
// dump of the given size under the tenant's budget and the request's floor
// and deadline. The reply is priced with the tenant's own measured ratio
// history, so advice sharpens as sessions finalize.
func (c *Client) Advise(req AdviseRequest) (AdviseReply, error) {
	if err := writeFrame(c.rw, frame{Type: frameAdvise, Payload: req.encode()}); err != nil {
		return AdviseReply{}, err
	}
	f, err := readFrame(c.rw)
	if err != nil {
		return AdviseReply{}, err
	}
	if f.Type == frameErr {
		return AdviseReply{}, fmt.Errorf("svc: advise failed: %s", f.Payload)
	}
	if f.Type != frameAdviseOK {
		return AdviseReply{}, fmt.Errorf("%w: unexpected reply to advise", ErrCorruptFrame)
	}
	return parseAdviseReply(f.Payload)
}
