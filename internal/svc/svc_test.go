package svc

import (
	"bytes"
	"fmt"
	"math"
	"net"
	"sync"
	"testing"

	"lcpio/internal/ckpt"
	"lcpio/internal/dvfs"
	"lcpio/internal/machine"
	"lcpio/internal/netsim"
	"lcpio/internal/nfs"
	"lcpio/internal/phases"
)

// genSet builds a deterministic synthetic checkpoint set; seed varies the
// data so different tenants dump different bytes.
func genSet(name string, ranks, seed int) ckpt.Set {
	set := ckpt.Set{
		Name:  name,
		Meta:  "svc-test",
		Codec: "sz",
		Ranks: ranks,
		Fields: []ckpt.Field{
			{Name: "pressure", Dims: []int{16, 24}, ErrorBound: 1e-3},
			{Name: "velocity_x", Dims: []int{8, 32}, ErrorBound: 5e-4},
		},
	}
	for fi := range set.Fields {
		f := &set.Fields[fi]
		elems := 1
		for _, d := range f.Dims {
			elems *= d
		}
		f.Data = make([][]float32, ranks)
		for r := 0; r < ranks; r++ {
			data := make([]float32, elems)
			for i := range data {
				x := float64(i)/64 + float64(r) + float64(seed)*0.37
				data[i] = float32(math.Sin(x) + 0.01*x)
			}
			f.Data[r] = data
		}
	}
	return set
}

// startPair wires a client to a server over net.Pipe with the connection
// handler on its own goroutine, mirroring production Serve.
func startPair(t *testing.T, srv *Server) *Client {
	t.Helper()
	cEnd, sEnd := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- srv.ServeConn(sEnd) }()
	t.Cleanup(func() {
		cEnd.Close()
		sEnd.Close()
		<-done
	})
	return NewClient(cEnd)
}

func restoreEqual(t *testing.T, srv *Server, name string, want ckpt.Set) {
	t.Helper()
	view, err := srv.OpenSet(name)
	if err != nil {
		t.Fatalf("open set %q: %v", name, err)
	}
	got, err := ckpt.Restore(view, ckpt.RestoreOptions{})
	if err != nil {
		t.Fatalf("restore %q: %v", name, err)
	}
	// Byte-identical to a local dump+restore of the same set: the daemon
	// must not perturb payload bytes, only placement.
	local := ckpt.NewMemMedium()
	if _, err := ckpt.Write(local, want, ckpt.WriteOptions{Workers: 2}); err != nil {
		t.Fatalf("local write: %v", err)
	}
	ref, err := ckpt.Restore(local, ckpt.RestoreOptions{})
	if err != nil {
		t.Fatalf("local restore: %v", err)
	}
	for fi := range ref.Fields {
		for r := range ref.Fields[fi].Data {
			a := ref.Fields[fi].Data[r]
			b := got.Fields[fi].Data[r]
			if len(a) != len(b) {
				t.Fatalf("set %q field %d rank %d: length %d vs %d", name, fi, r, len(b), len(a))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("set %q field %d rank %d elem %d: %v vs %v", name, fi, r, i, b[i], a[i])
				}
			}
		}
	}
}

func TestServiceRoundTrip(t *testing.T) {
	srv := NewServer(Config{})
	if err := srv.AddTenant(TenantConfig{Name: "climate"}); err != nil {
		t.Fatal(err)
	}
	cl := startPair(t, srv)
	set := genSet("cycle-001", 3, 1)
	res, err := cl.Dump("climate", set, DumpOptions{Workers: 2})
	if err != nil {
		t.Fatalf("dump: %v", err)
	}
	if res.Chunks != set.Ranks*len(set.Fields) {
		t.Fatalf("chunks %d, want %d", res.Chunks, set.Ranks*len(set.Fields))
	}
	if res.PayloadBytes <= 0 || res.SetBytes <= res.PayloadBytes {
		t.Fatalf("implausible sizes: %+v", res)
	}
	if res.Joules <= 0 || res.CompressJoules <= 0 || res.TransitJoules <= 0 {
		t.Fatalf("missing energy attribution: %+v", res)
	}
	if got := res.CompressJoules + res.TransitJoules; math.Abs(got-res.Joules) > 1e-9 {
		t.Fatalf("joules split %v does not sum to %v", got, res.Joules)
	}
	if res.SimSeconds <= 0 || res.GoodputBps <= 0 {
		t.Fatalf("missing timeline: %+v", res)
	}
	restoreEqual(t, srv, "cycle-001", set)

	entries, err := cl.List()
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	if len(entries) != 1 || entries[0].Name != "cycle-001" || entries[0].Tenant != "climate" {
		t.Fatalf("list %+v", entries)
	}
	if entries[0].Bytes != res.ExtentBytes {
		t.Fatalf("listed %d bytes, finalized extent %d", entries[0].Bytes, res.ExtentBytes)
	}

	rr, err := cl.Restore("cycle-001")
	if err != nil {
		t.Fatalf("remote restore: %v", err)
	}
	if rr.Chunks != res.Chunks || rr.RawBytes != res.RawBytes {
		t.Fatalf("restore reply %+v vs result %+v", rr, res)
	}
	if rr.SimReadSeconds <= 0 || rr.ReadJoules <= 0 {
		t.Fatalf("restore reply not priced: %+v", rr)
	}

	u, ok := srv.Usage("climate")
	if !ok || u.ActiveSessions != 0 || u.ReservedBytes != 0 {
		t.Fatalf("ledger not settled: %+v", u)
	}
	if u.ResidentBytes != res.ExtentBytes || u.Joules != res.Joules {
		t.Fatalf("ledger %+v disagrees with result %+v", u, res)
	}
}

// TestConcurrentTenantsByteIdentical drives 8 simultaneous tenant streams
// — the acceptance floor — each over its own connection, and then proves
// every restore is byte-identical to a local single-writer dump. Run
// under -race this is also the daemon's data-race gate.
func TestConcurrentTenantsByteIdentical(t *testing.T) {
	const tenants = 8
	srv := NewServer(Config{})
	sets := make([]ckpt.Set, tenants)
	for i := 0; i < tenants; i++ {
		if err := srv.AddTenant(TenantConfig{Name: fmt.Sprintf("tenant-%d", i)}); err != nil {
			t.Fatal(err)
		}
		sets[i] = genSet(fmt.Sprintf("set-%d", i), 2+i%3, i)
	}
	var wg sync.WaitGroup
	results := make([]Result, tenants)
	errs := make([]error, tenants)
	for i := 0; i < tenants; i++ {
		cl := startPair(t, srv)
		wg.Add(1)
		go func(i int, cl *Client) {
			defer wg.Done()
			results[i], errs[i] = cl.Dump(fmt.Sprintf("tenant-%d", i), sets[i], DumpOptions{Workers: 2})
		}(i, cl)
	}
	wg.Wait()
	for i := 0; i < tenants; i++ {
		if errs[i] != nil {
			t.Fatalf("tenant %d: %v", i, errs[i])
		}
		restoreEqual(t, srv, fmt.Sprintf("set-%d", i), sets[i])
	}
	// Extents must be disjoint.
	type span struct{ a, b int64 }
	var spans []span
	for i, r := range results {
		s := span{r.ExtentBase, r.ExtentBase + r.ExtentBytes}
		for j, o := range spans {
			if s.a < o.b && o.a < s.b {
				t.Fatalf("extent %d [%d,%d) overlaps %d [%d,%d)", i, s.a, s.b, j, o.a, o.b)
			}
		}
		spans = append(spans, s)
	}
}

// TestEnergyReconcilesWithCampaign: a session's close-time attribution
// must agree with the phases campaign report for the same checkpoint to
// <1% (acceptance bar; the construction makes it essentially exact).
func TestEnergyReconcilesWithCampaign(t *testing.T) {
	srv := NewServer(Config{})
	if err := srv.AddTenant(TenantConfig{Name: "a"}); err != nil {
		t.Fatal(err)
	}
	cl := startPair(t, srv)
	set := genSet("reconcile", 4, 9)
	res, err := cl.Dump("a", set, DumpOptions{Workers: 2})
	if err != nil {
		t.Fatalf("dump: %v", err)
	}

	local := ckpt.NewMemMedium()
	wres, err := ckpt.Write(local, set, ckpt.WriteOptions{Workers: 2})
	if err != nil {
		t.Fatalf("local write: %v", err)
	}
	if wres.FileBytes != res.SetBytes || wres.PayloadBytes != res.PayloadBytes {
		t.Fatalf("daemon moved %d/%d bytes, local write %d/%d",
			res.SetBytes, res.PayloadBytes, wres.FileBytes, wres.PayloadBytes)
	}
	plan, err := wres.CampaignPlan(ckpt.CampaignOptions{})
	if err != nil {
		t.Fatalf("campaign plan: %v", err)
	}
	chip := dvfs.Broadwell()
	tuned, err := plan.ApplyRule(phases.PaperRule(), chip).Execute(machine.NewNode(chip, 1))
	if err != nil {
		t.Fatalf("campaign execute: %v", err)
	}
	if tuned.Joules <= 0 {
		t.Fatal("campaign priced zero joules")
	}
	if rel := math.Abs(res.Joules-tuned.Joules) / tuned.Joules; rel > 0.01 {
		t.Fatalf("session %.3f J vs campaign %.3f J: %.2f%% off (bar is 1%%)",
			res.Joules, tuned.Joules, 100*rel)
	}
}

// TestBackpressureEngages pins the saturation behavior: on an idle daemon
// a lone session never waits for the medium, and on a daemon whose mount
// is slow enough to saturate, concurrent sessions must see queue waits
// beyond the saturation window (backpressure events) reported in their
// results.
func TestBackpressureEngages(t *testing.T) {
	slow := nfs.Mount{Link: netsim.Link{Name: "slow", BandwidthBps: 2e6, LatencySec: 5e-5, MTU: 9000}}

	idle := NewServer(Config{Mount: slow, SaturationWindow: 1e-3})
	if err := idle.AddTenant(TenantConfig{Name: "solo"}); err != nil {
		t.Fatal(err)
	}
	res, err := startPair(t, idle).Dump("solo", genSet("solo", 2, 0), DumpOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.BackpressureEvents != 0 || res.QueueWaitSeconds != 0 {
		t.Fatalf("lone session saw contention: %+v", res)
	}

	srv := NewServer(Config{Mount: slow, SaturationWindow: 1e-3})
	const tenants = 4
	var wg sync.WaitGroup
	results := make([]Result, tenants)
	errs := make([]error, tenants)
	for i := 0; i < tenants; i++ {
		name := fmt.Sprintf("t%d", i)
		if err := srv.AddTenant(TenantConfig{Name: name}); err != nil {
			t.Fatal(err)
		}
		cl := startPair(t, srv)
		wg.Add(1)
		go func(i int, cl *Client) {
			defer wg.Done()
			results[i], errs[i] = cl.Dump(fmt.Sprintf("t%d", i),
				genSet(fmt.Sprintf("s%d", i), 3, i), DumpOptions{Workers: 2})
		}(i, cl)
	}
	wg.Wait()
	var bp, wait int
	for i := 0; i < tenants; i++ {
		if errs[i] != nil {
			t.Fatalf("tenant %d: %v", i, errs[i])
		}
		if results[i].BackpressureEvents > 0 {
			bp++
		}
		if results[i].QueueWaitSeconds > 0 {
			wait++
		}
	}
	// The first session to touch the medium may never wait, but a
	// saturated mount must make most sessions queue and at least one
	// cross the saturation window.
	if bp == 0 {
		t.Fatalf("no session reported backpressure: %+v", results)
	}
	if wait < tenants-1 {
		t.Fatalf("only %d of %d sessions queued on a saturated medium", wait, tenants)
	}
}

func TestAdmissionRejects(t *testing.T) {
	srv := NewServer(Config{CapacityBytes: 1 << 20})
	for _, tc := range []TenantConfig{
		{Name: "tiny-energy", EnergyBudgetJoules: 1e-9},
		{Name: "tiny-quota", QuotaBytes: 128},
		{Name: "roomy"},
	} {
		if err := srv.AddTenant(tc); err != nil {
			t.Fatal(err)
		}
	}
	set := genSet("r", 2, 0)

	cases := []struct {
		tenant string
		opts   DumpOptions
		code   RejectCode
	}{
		{"ghost", DumpOptions{}, RejectTenant},
		{"tiny-energy", DumpOptions{}, RejectEnergy},
		{"roomy", DumpOptions{DeadlineSeconds: 1e-12}, RejectDeadline},
		{"tiny-quota", DumpOptions{}, RejectQuota},
	}
	for _, c := range cases {
		_, err := startPair(t, srv).Dump(c.tenant, set, c.opts)
		rej, ok := IsReject(err)
		if !ok {
			t.Fatalf("%s: want reject, got %v", c.tenant, err)
		}
		if rej.Code != c.code {
			t.Fatalf("%s: reject code %v, want %v", c.tenant, rej.Code, c.code)
		}
		if c.code == RejectEnergy && !(rej.ProjectedJoules > rej.BudgetJoules) {
			t.Fatalf("energy reject did not quote the losing price: %+v", rej)
		}
	}

	// Capacity: a medium too small for any extent rejects everyone.
	full := NewServer(Config{CapacityBytes: 64})
	if err := full.AddTenant(TenantConfig{Name: "roomy"}); err != nil {
		t.Fatal(err)
	}
	_, err := startPair(t, full).Dump("roomy", set, DumpOptions{})
	if rej, ok := IsReject(err); !ok || rej.Code != RejectCapacity {
		t.Fatalf("want capacity reject, got %v", err)
	}
}

// TestAdmissionQueuesOnSessionPressure: with MaxSessions=1 a second dump
// waits for the first to close instead of failing, and reports the wait.
func TestAdmissionQueuesOnSessionPressure(t *testing.T) {
	srv := NewServer(Config{})
	if err := srv.AddTenant(TenantConfig{Name: "q", MaxSessions: 1}); err != nil {
		t.Fatal(err)
	}
	const dumps = 4
	var wg sync.WaitGroup
	results := make([]Result, dumps)
	errs := make([]error, dumps)
	for i := 0; i < dumps; i++ {
		cl := startPair(t, srv)
		wg.Add(1)
		go func(i int, cl *Client) {
			defer wg.Done()
			results[i], errs[i] = cl.Dump("q",
				genSet(fmt.Sprintf("q%d", i), 2, i), DumpOptions{Workers: 2})
		}(i, cl)
	}
	wg.Wait()
	queued := 0
	for i := 0; i < dumps; i++ {
		if errs[i] != nil {
			t.Fatalf("dump %d: %v", i, errs[i])
		}
		if results[i].AdmissionWaitSeconds > 0 {
			queued++
		}
	}
	if queued == 0 {
		t.Fatal("no dump reported admission wait despite MaxSessions=1")
	}
	for i := 0; i < dumps; i++ {
		restoreEqual(t, srv, fmt.Sprintf("q%d", i), genSet(fmt.Sprintf("q%d", i), 2, i))
	}
}

// TestFrameRoundTrips pins every payload codec through encode→parse.
func TestFrameRoundTrips(t *testing.T) {
	req := OpenRequest{
		Tenant: "t", SetName: "s", Meta: "m", Codec: "sz", Ranks: 3,
		Fields: []ckpt.FieldInfo{{Name: "f", Dims: []int{4, 5}, ErrorBound: 1e-3}},
		RelEB:  1e-3, ProjectedRatio: 8, DeadlineSeconds: 2.5,
	}
	got, err := parseOpenRequest(req.encode())
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != fmt.Sprint(req) {
		t.Fatalf("open request round trip: %+v vs %+v", got, req)
	}

	acc := OpenAccept{Session: 7, ExtentBase: 100, ExtentBytes: 2048, RankStride: 512,
		ProjectedJoules: 3.5, AdmissionWaitSeconds: 0.25}
	if got, err := parseOpenAccept(acc.encode()); err != nil || got != acc {
		t.Fatalf("open accept round trip: %+v, %v", got, err)
	}

	rej := Reject{Code: RejectEnergy, Detail: "too hot", ProjectedJoules: 9, BudgetJoules: 1}
	if got, err := parseReject(rej.encode()); err != nil || got != rej {
		t.Fatalf("reject round trip: %+v, %v", got, err)
	}

	pr := PutReply{Idx: 3, QueueWaitSeconds: 0.125, Backpressure: true}
	if got, err := parsePutReply(pr.encode()); err != nil || got != pr {
		t.Fatalf("put reply round trip: %+v, %v", got, err)
	}

	res := Result{SetBytes: 10, PayloadBytes: 8, RawBytes: 64, Chunks: 2,
		CompressJoules: 1, TransitJoules: 2, Joules: 3, QueueWaitSeconds: 0.5,
		SimSeconds: 1.5, BackpressureEvents: 4, GoodputBps: 42.5,
		ExtentBase: 0, ExtentBytes: 10, AdmissionWaitSeconds: 0.01}
	if got, err := parseResult(res.encode()); err != nil || got != res {
		t.Fatalf("result round trip: %+v, %v", got, err)
	}

	idx, blob, err := parsePut(encodePut(5, []byte{1, 2, 3}))
	if err != nil || idx != 5 || !bytes.Equal(blob, []byte{1, 2, 3}) {
		t.Fatalf("put round trip: %d %v %v", idx, blob, err)
	}

	entries := []SetEntry{{Name: "a", Tenant: "x", Bytes: 1, Joules: 2, RawByte: 3}}
	got2, err := parseSetEntries(encodeSetEntries(entries))
	if err != nil || len(got2) != 1 || got2[0] != entries[0] {
		t.Fatalf("set entries round trip: %+v, %v", got2, err)
	}

	rr := RestoreReply{Chunks: 6, RawBytes: 640, SimReadSeconds: 0.1,
		ReadJoules: 1.5, DecompressRatio: 8}
	if got, err := parseRestoreReply(rr.encode()); err != nil || got != rr {
		t.Fatalf("restore reply round trip: %+v, %v", got, err)
	}

	fr := frame{Type: frameOpen, Session: 9, Payload: []byte("hello")}
	parsed, n, err := ParseFrame(appendFrame(nil, fr))
	if err != nil || n != frameHdrLen+5 || parsed.Type != frameOpen ||
		parsed.Session != 9 || string(parsed.Payload) != "hello" {
		t.Fatalf("frame round trip: %+v %d %v", parsed, n, err)
	}
}
