package svc

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"time"

	"lcpio/internal/advisor"
	"lcpio/internal/ckpt"
	"lcpio/internal/container"
	"lcpio/internal/dvfs"
	"lcpio/internal/machine"
	"lcpio/internal/nfs"
	"lcpio/internal/obs"
	"lcpio/internal/phases"
)

// Config parameterizes the daemon. The zero value is usable: an unbounded
// in-memory medium, the paper's Broadwell node, the default NFS mount, and
// the Eqn 3 tuned clocks.
type Config struct {
	// Medium is the shared backing store every session's extent is carved
	// from (nil = fresh ckpt.MemMedium). Wrap it in a ckpt.CachedMedium
	// chain externally if read penalties should apply.
	Medium ckpt.Medium
	// CapacityBytes bounds total extent allocation (0 = unbounded). The
	// extent allocator is a bump pointer with backward coalescing: every
	// closing session returns its slack, and any hole bordering the bump
	// pointer — including slack recorded by earlier out-of-order closes —
	// is reclaimed immediately, so a full medium rejects rather than
	// queues.
	CapacityBytes int64
	// Chip prices admission and attribution (nil = dvfs.Broadwell).
	Chip *dvfs.Chip
	// Mount is the simulated NFS path all sessions share; its bandwidth
	// is the contended resource behind queue waits (zero = DefaultMount).
	Mount nfs.Mount
	// Rule supplies the per-phase clock fractions for pricing
	// (zero = phases.PaperRule, the Eqn 3 tuned clocks).
	Rule phases.Rule
	// SaturationWindow is the per-chunk queue wait beyond which the
	// daemon counts a backpressure event and flags the PUT reply
	// (0 = 2ms).
	SaturationWindow float64
	// DefaultRatio is the projected compression ratio used for pricing
	// and extent sizing when a client does not supply one (0 = 8).
	DefaultRatio float64
	// ExtentSlack over-allocates each session's extent relative to its
	// projected compressed size, absorbing ratio misprediction without
	// renegotiation (0 = 2.0; clamped to >= 1.1).
	ExtentSlack float64
	// WireCodec, when set, requires every dump session to negotiate this
	// compressed-wire codec at open ("" = sessions choose freely). Use it
	// to keep plain raw-framed dumps off a bandwidth-constrained daemon.
	WireCodec string
}

func (c Config) normalized() Config {
	if c.Medium == nil {
		c.Medium = ckpt.NewMemMedium()
	}
	if c.Chip == nil {
		c.Chip = dvfs.Broadwell()
	}
	if c.Rule == (phases.Rule{}) {
		c.Rule = phases.PaperRule()
	}
	if c.SaturationWindow <= 0 {
		c.SaturationWindow = 2e-3
	}
	if c.DefaultRatio <= 0 {
		c.DefaultRatio = 8
	}
	if c.ExtentSlack < 1.1 {
		c.ExtentSlack = 2.0
	}
	return c
}

// TenantConfig registers one tenant with the daemon.
type TenantConfig struct {
	Name string
	// QuotaBytes caps the tenant's medium footprint: finalized set bytes
	// plus in-flight extent reservations (0 = unlimited). An open that
	// exceeds it only through reservations queues; one that cannot fit
	// even after every reservation resolves is rejected.
	QuotaBytes int64
	// EnergyBudgetJoules caps the projected Eqn 2 joules of a single
	// dump session (0 = unlimited).
	EnergyBudgetJoules float64
	// MaxSessions caps concurrent dump sessions; excess opens queue
	// (0 = unlimited).
	MaxSessions int
}

type tenant struct {
	cfg      TenantConfig
	key      string // sanitized metric-name fragment
	active   int
	resident int64 // finalized set bytes on the medium
	reserved int64 // in-flight extent reservations
	joules   float64
	// ratios smooths the tenant's measured compression ratios per
	// (codec, bound decade); the advise path prices candidates with it.
	ratios *advisor.RatioTracker
}

type setRecord struct {
	tenant string
	base   int64
	size   int64
	raw    int64
	joules float64
}

type session struct {
	id       uint32
	ten      *tenant
	req      OpenRequest
	view     *subMedium
	m        *ckpt.Manifest
	base     int64
	extCap   int64
	stride   int64
	ratio    float64 // projected compression ratio the session was priced at
	rankUsed []int64
	seen     []bool
	nSeen    int
	compSec  []float64 // per-field modeled compress seconds at the tuned clock
	// wireCodec is the negotiated compressed-wire codec ("" = plain PUT
	// frames only); wireSaved accumulates the shared-medium transfer time
	// saved versus shipping raw, wireChunks the inflate-verified chunks.
	wireCodec  string
	wireSaved  float64
	wireChunks int64
	// simClock is the session's simulated timeline: compress feeds the
	// shared medium, which serializes across sessions via Server.mediumFree.
	simClock  float64
	queueWait float64
	bp        int64
	admitWait float64
	payload   int64
	projJ     float64
	broken    bool
	done      bool
}

// Server is the daemon: one shared medium, one shared simulated-NFS
// timeline, registered tenants, and the admission ledger.
type Server struct {
	cfg   Config
	node  *machine.Node
	fComp float64
	fIO   float64

	mu        sync.Mutex
	cond      *sync.Cond
	tenants   map[string]*tenant
	sessions  map[uint32]*session
	sets      map[string]*setRecord
	openNames map[string]bool
	nextOff   int64
	// slack maps a closed extent's end offset to the start of its
	// reclaimable tail, recording holes that did not border the bump
	// pointer when they were freed. reclaimLocked walks this map backward
	// whenever the pointer retreats onto a recorded end.
	slack      map[int64]int64
	nextSess   uint32
	mediumFree float64 // simulated time the shared medium next goes idle
	closed     bool
}

// NewServer builds a daemon from cfg. Tenants are registered separately
// with AddTenant; a connection from an unregistered tenant is rejected at
// open with RejectTenant.
func NewServer(cfg Config) *Server {
	cfg = cfg.normalized()
	s := &Server{
		cfg:       cfg,
		node:      machine.NewNode(cfg.Chip, 1),
		fComp:     cfg.Chip.ClampFreq(cfg.Rule.CompressionFraction * cfg.Chip.BaseGHz),
		fIO:       cfg.Chip.ClampFreq(cfg.Rule.WritingFraction * cfg.Chip.BaseGHz),
		tenants:   make(map[string]*tenant),
		sessions:  make(map[uint32]*session),
		sets:      make(map[string]*setRecord),
		openNames: make(map[string]bool),
		slack:     make(map[int64]int64),
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// AddTenant registers (or reconfigures) a tenant.
func (s *Server) AddTenant(tc TenantConfig) error {
	if tc.Name == "" || len(tc.Name) > maxNameLen {
		return errors.New("svc: invalid tenant name")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.tenants[tc.Name]; ok {
		t.cfg = tc
		return nil
	}
	s.tenants[tc.Name] = &tenant{cfg: tc, key: metricKey(tc.Name), ratios: advisor.NewRatioTracker()}
	return nil
}

// Close wakes queued admissions with an error and stops accepting work.
// In-flight sessions on open connections fail at their next frame.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Serve accepts connections until the listener closes, handling each on
// its own goroutine. It returns the accept error (net.ErrClosed after a
// clean shutdown).
func (s *Server) Serve(l net.Listener) error {
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer conn.Close()
			_ = s.ServeConn(conn)
		}()
	}
}

// ServeConn runs the frame loop for one connection: at most one dump
// session at a time, plus sessionless list/restore requests. It returns
// nil on clean EOF. A connection dying mid-session aborts the session and
// refunds its extent reservation.
func (s *Server) ServeConn(rw io.ReadWriter) error {
	var sess *session
	defer func() {
		if sess != nil && !sess.done {
			s.abort(sess)
		}
	}()
	for {
		f, err := readFrame(rw)
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		switch f.Type {
		case frameOpen:
			if sess != nil && !sess.done {
				err = reply(rw, frameErr, f.Session, []byte("session already open on this connection"))
				break
			}
			var req OpenRequest
			req, err = parseOpenRequest(f.Payload)
			if err != nil {
				err = reply(rw, frameErr, 0, []byte(err.Error()))
				break
			}
			var rej *Reject
			var acc OpenAccept
			sess, acc, rej, err = s.open(req)
			switch {
			case err != nil:
				err = reply(rw, frameErr, 0, []byte(err.Error()))
			case rej != nil:
				err = reply(rw, frameReject, 0, rej.encode())
			default:
				err = reply(rw, frameOpenOK, sess.id, acc.encode())
			}
		case framePut:
			if sess == nil || sess.done || f.Session != sess.id {
				err = reply(rw, frameErr, f.Session, []byte("no such session"))
				break
			}
			idx, blob, perr := parsePut(f.Payload)
			if perr == nil {
				var pr PutReply
				pr, perr = s.put(sess, idx, blob)
				if perr == nil {
					err = reply(rw, framePutOK, sess.id, pr.encode())
					break
				}
			}
			err = reply(rw, frameErr, sess.id, []byte(perr.Error()))
		case framePutZ:
			if sess == nil || sess.done || f.Session != sess.id {
				err = reply(rw, frameErr, f.Session, []byte("no such session"))
				break
			}
			idx, rawLen, blob, perr := parsePutZ(f.Payload)
			if perr == nil {
				var pr PutReply
				pr, perr = s.putZ(sess, idx, rawLen, blob)
				if perr == nil {
					err = reply(rw, framePutOK, sess.id, pr.encode())
					break
				}
			}
			err = reply(rw, frameErr, sess.id, []byte(perr.Error()))
		case frameClose:
			if sess == nil || sess.done || f.Session != sess.id {
				err = reply(rw, frameErr, f.Session, []byte("no such session"))
				break
			}
			res, cerr := s.closeSession(sess)
			if cerr != nil {
				err = reply(rw, frameErr, sess.id, []byte(cerr.Error()))
				break
			}
			err = reply(rw, frameCloseOK, sess.id, res.encode())
			sess = nil
		case frameList:
			err = reply(rw, frameListOK, 0, encodeSetEntries(s.List()))
		case frameAdvise:
			areq, perr := parseAdviseRequest(f.Payload)
			if perr != nil {
				err = reply(rw, frameErr, f.Session, []byte(perr.Error()))
				break
			}
			rep, aerr := s.advise(areq)
			if aerr != nil {
				err = reply(rw, frameErr, f.Session, []byte(aerr.Error()))
				break
			}
			err = reply(rw, frameAdviseOK, f.Session, rep.encode())
		case frameRestoreReq:
			name, ok := parseSetName(f.Payload)
			if !ok {
				err = reply(rw, frameErr, f.Session, []byte("bad restore request"))
				break
			}
			rr, rerr := s.restoreSet(name)
			if rerr != nil {
				err = reply(rw, frameErr, f.Session, []byte(rerr.Error()))
				break
			}
			err = reply(rw, frameRestoreOK, f.Session, rr.encode())
		case frameErr, frameOpenOK, frameReject, framePutOK, frameCloseOK, frameListOK, frameRestoreOK, frameAdviseOK:
			err = reply(rw, frameErr, f.Session, []byte("unexpected reply frame"))
		default:
			err = reply(rw, frameErr, f.Session, []byte("unknown frame"))
		}
		if err != nil {
			return err
		}
	}
}

func reply(w io.Writer, t frameType, sess uint32, payload []byte) error {
	return writeFrame(w, frame{Type: t, Session: sess, Payload: payload})
}

// price projects a dump's Eqn 2 cost at the Eqn 3 tuned clocks: compress
// the raw bytes at the assumed ratio, then push the projected file through
// the shared mount.
func (s *Server) price(req OpenRequest, ratio float64) (projJ, projSec float64, err error) {
	return s.priceRaw(req.Codec, req.RelEB, req.RawBytes(), s.overhead(req), ratio)
}

// priceRaw is the geometry-free admission pricer the advise path shares
// with open: raw bytes through the codec at the assumed ratio, the
// projected file (plus framing overhead) through the shared mount.
func (s *Server) priceRaw(codec string, relEB float64, raw, overhead int64, ratio float64) (projJ, projSec float64, err error) {
	compW, err := machine.CompressionWorkloadWithRatio(codec, raw, relEB, ratio, s.cfg.Chip)
	if err != nil {
		return 0, 0, err
	}
	projFile := int64(float64(raw)/ratio) + overhead
	wrW := machine.TransitWorkload(s.cfg.Mount.Write(projFile), s.cfg.Chip)
	cs := s.node.RunClean(compW, s.fComp)
	ws := s.node.RunClean(wrW, s.fIO)
	return cs.Joules + ws.Joules, cs.Seconds + ws.Seconds, nil
}

func (s *Server) overhead(req OpenRequest) int64 {
	nameLen, ndims := len(req.SetName), 0
	for _, f := range req.Fields {
		if len(f.Name) > nameLen {
			nameLen = len(f.Name)
		}
		if len(f.Dims) > ndims {
			ndims = len(f.Dims)
		}
	}
	return ckpt.OverheadBytes(len(req.Fields), req.Ranks, nameLen+len(req.Meta)/3+1, ndims)
}

// open runs admission control. Exactly one of (session, reject, error) is
// non-zero. Energy, deadline, and fit-never quota violations reject
// immediately; session-slot and reservation pressure queue until peers
// close (the reservation slack they refund is what makes waiting useful).
func (s *Server) open(req OpenRequest) (*session, OpenAccept, *Reject, error) {
	ratio := req.ProjectedRatio
	if ratio <= 0 {
		ratio = s.cfg.DefaultRatio
	}
	projJ, projSec, err := s.price(req, ratio)
	if err != nil {
		return nil, OpenAccept{}, nil, err
	}

	raw := req.RawBytes()
	perRank := raw / int64(req.Ranks)
	stride := int64(float64(perRank)/ratio*s.cfg.ExtentSlack) +
		int64(len(req.Fields))*512 + 4096
	extCap := int64(ckpt.HeaderLen) + int64(req.Ranks)*stride + 2*s.overhead(req)

	t0 := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()

	ten := s.tenants[req.Tenant]
	if ten == nil {
		s.countReject(nil, RejectTenant)
		return nil, OpenAccept{}, &Reject{Code: RejectTenant,
			Detail: fmt.Sprintf("tenant %q not registered", req.Tenant)}, nil
	}
	if b := ten.cfg.EnergyBudgetJoules; b > 0 && projJ > b {
		s.countReject(ten, RejectEnergy)
		return nil, OpenAccept{}, &Reject{Code: RejectEnergy,
			Detail:          fmt.Sprintf("projected %.1f J exceeds budget %.1f J", projJ, b),
			ProjectedJoules: projJ, BudgetJoules: b}, nil
	}
	if d := req.DeadlineSeconds; d > 0 && projSec > d {
		s.countReject(ten, RejectDeadline)
		return nil, OpenAccept{}, &Reject{Code: RejectDeadline,
			Detail:          fmt.Sprintf("projected %.3f s misses deadline %.3f s", projSec, d),
			ProjectedJoules: projJ}, nil
	}
	if q := ten.cfg.QuotaBytes; q > 0 && ten.resident+extCap > q {
		s.countReject(ten, RejectQuota)
		return nil, OpenAccept{}, &Reject{Code: RejectQuota,
			Detail: fmt.Sprintf("extent %d B cannot fit quota %d B (resident %d B)",
				extCap, q, ten.resident),
			ProjectedJoules: projJ}, nil
	}
	if wc := s.cfg.WireCodec; wc != "" && req.WireCodec != wc {
		return nil, OpenAccept{}, nil, fmt.Errorf(
			"svc: daemon requires wire codec %q, session offered %q", wc, req.WireCodec)
	}
	if s.sets[req.SetName] != nil || s.openNames[req.SetName] {
		return nil, OpenAccept{}, nil, fmt.Errorf("svc: set %q already exists", req.SetName)
	}

	queued := false
	for {
		if s.closed {
			return nil, OpenAccept{}, nil, errors.New("svc: server closed")
		}
		fits := ten.cfg.QuotaBytes <= 0 || ten.resident+ten.reserved+extCap <= ten.cfg.QuotaBytes
		slot := ten.cfg.MaxSessions <= 0 || ten.active < ten.cfg.MaxSessions
		if fits && slot {
			break
		}
		if !queued {
			queued = true
			obs.Add("lcpio_svc_queued_total", 1)
			obs.Add("lcpio_svc_tenant_"+ten.key+"_queued_total", 1)
		}
		s.cond.Wait()
	}
	// Re-check the name after any queue wait: a peer may have claimed it.
	if s.sets[req.SetName] != nil || s.openNames[req.SetName] {
		return nil, OpenAccept{}, nil, fmt.Errorf("svc: set %q already exists", req.SetName)
	}
	if c := s.cfg.CapacityBytes; c > 0 && s.nextOff+extCap > c {
		s.countReject(ten, RejectCapacity)
		return nil, OpenAccept{}, &Reject{Code: RejectCapacity,
			Detail: fmt.Sprintf("extent %d B exceeds medium capacity (allocated %d of %d B)",
				extCap, s.nextOff, c),
			ProjectedJoules: projJ}, nil
	}

	s.nextSess++
	n := req.Ranks * len(req.Fields)
	sess := &session{
		id:  s.nextSess,
		ten: ten,
		req: req,
		view: &subMedium{
			inner: s.cfg.Medium, base: s.nextOff, size: extCap, limit: extCap,
		},
		base:      s.nextOff,
		extCap:    extCap,
		stride:    stride,
		ratio:     ratio,
		wireCodec: req.WireCodec,
		rankUsed:  make([]int64, req.Ranks),
		seen:      make([]bool, n),
		compSec:   make([]float64, len(req.Fields)),
		admitWait: time.Since(t0).Seconds(),
		projJ:     projJ,
	}
	sess.m = &ckpt.Manifest{
		SetName: req.SetName, Meta: req.Meta, Codec: req.Codec,
		Ranks: req.Ranks, Fields: req.Fields,
		Chunks: make([]ckpt.ChunkInfo, n),
	}
	if err := ckpt.WriteSetHeader(sess.view, sess.m); err != nil {
		return nil, OpenAccept{}, nil, err
	}
	s.nextOff += extCap
	ten.reserved += extCap
	ten.active++
	s.sessions[sess.id] = sess
	s.openNames[req.SetName] = true
	obs.Add("lcpio_svc_admitted_total", 1)
	obs.Add("lcpio_svc_tenant_"+ten.key+"_admitted_total", 1)
	obs.Set("lcpio_svc_active_sessions", float64(len(s.sessions)))
	acc := OpenAccept{
		Session: sess.id, ExtentBase: sess.base, ExtentBytes: extCap,
		RankStride: stride, ProjectedJoules: projJ, AdmissionWaitSeconds: sess.admitWait,
		WireCodec: sess.wireCodec,
	}
	return sess, acc, nil, nil
}

// reclaimLocked returns a closing extent's tail [tail, end) to the
// allocator (s.mu held). When the extent borders the bump pointer the
// watermark retreats to tail, then keeps walking backward through slack
// recorded by earlier out-of-order closes that now borders it; otherwise
// the hole is recorded for a later walk. Buried keys can never collide
// with future extent ends: new extents are carved above s.nextOff, which
// sits above every recorded key.
func (s *Server) reclaimLocked(end, tail int64) {
	if end != s.nextOff {
		if tail < end {
			s.slack[end] = tail
		}
		return
	}
	s.nextOff = tail
	for {
		t, ok := s.slack[s.nextOff]
		if !ok {
			return
		}
		delete(s.slack, s.nextOff)
		s.nextOff = t
	}
}

// countReject must run with s.mu held (ten may be nil for unknown tenants).
func (s *Server) countReject(ten *tenant, code RejectCode) {
	obs.Add("lcpio_svc_rejected_total", 1)
	if ten != nil {
		obs.Add("lcpio_svc_tenant_"+ten.key+"_rejected_total", 1)
	}
	_ = code
}

// put lands one compressed chunk: it advances the session's simulated
// clock by the modeled compress time, serializes the wire transfer on the
// shared medium timeline, and places the blob in the session's per-rank
// lane. The queue wait — time the chunk sat compressed but unwritable
// because other sessions held the medium — is the backpressure signal.
func (s *Server) put(sess *session, idx int, blob []byte) (PutReply, error) {
	if sess.broken {
		return PutReply{}, errors.New("svc: session failed; close the connection")
	}
	nf := len(sess.req.Fields)
	if idx < 0 || idx >= len(sess.seen) {
		return PutReply{}, fmt.Errorf("svc: chunk index %d outside set of %d", idx, len(sess.seen))
	}
	if sess.seen[idx] {
		return PutReply{}, fmt.Errorf("svc: duplicate chunk %d", idx)
	}
	if len(blob) == 0 {
		return PutReply{}, fmt.Errorf("svc: empty chunk %d", idx)
	}
	field, rank := idx%nf, idx/nf
	if sess.rankUsed[rank]+int64(len(blob)) > sess.stride {
		sess.broken = true
		return PutReply{}, fmt.Errorf(
			"svc: rank %d lane overflow: %d + %d B exceeds negotiated stride %d B (ratio shortfall)",
			rank, sess.rankUsed[rank], len(blob), sess.stride)
	}
	if sess.compSec[field] == 0 {
		f := sess.req.Fields[field]
		w, err := machine.CompressionWorkloadWithRatio(
			sess.req.Codec, int64(f.Elems())*4, sess.req.RelEB, sess.ratio, s.cfg.Chip)
		if err != nil {
			return PutReply{}, err
		}
		sess.compSec[field] = s.node.RunClean(w, s.fComp).Seconds
	}
	wireSec := s.cfg.Mount.Write(int64(len(blob))).NetworkSeconds

	s.mu.Lock()
	avail := sess.simClock + sess.compSec[field]
	start := avail
	if s.mediumFree > start {
		start = s.mediumFree
	}
	wait := start - avail
	s.mediumFree = start + wireSec
	s.mu.Unlock()
	sess.simClock = start + wireSec
	sess.queueWait += wait
	bp := wait > s.cfg.SaturationWindow
	if bp {
		sess.bp++
		obs.Add("lcpio_svc_backpressure_total", 1)
		obs.Add("lcpio_svc_tenant_"+sess.ten.key+"_backpressure_total", 1)
	}

	rel := int64(ckpt.HeaderLen) + int64(rank)*sess.stride + sess.rankUsed[rank]
	if _, err := sess.view.WriteAt(blob, rel); err != nil {
		sess.broken = true
		return PutReply{}, err
	}
	sess.m.Chunks[idx] = ckpt.ChunkInfo{
		Rank: rank, Field: field, Offset: rel, Size: int64(len(blob)), CRC: ckpt.Digest(blob),
	}
	sess.rankUsed[rank] += int64(len(blob))
	sess.seen[idx] = true
	sess.nSeen++
	sess.payload += int64(len(blob))
	obs.Add("lcpio_svc_chunks_total", 1)
	obs.AddFloat("lcpio_svc_bytes_total", float64(len(blob)))
	return PutReply{Idx: idx, QueueWaitSeconds: wait, Backpressure: bp}, nil
}

// putZ lands one compressed-wire chunk (framePutZ). The blob is the same
// container blob a plain PUT carries, but the client declared the raw size
// it inflates to, so the daemon can verify the chunk end to end and credit
// the shared-medium transfer time compression saved. The declared length
// is hostile until the blob proves it: it must match the session's field
// geometry, and the blob must actually inflate to it. On success the blob
// is stored byte-identically to a plain PUT, leaving restore unchanged.
func (s *Server) putZ(sess *session, idx int, rawLen int64, blob []byte) (PutReply, error) {
	if sess.wireCodec == "" {
		return PutReply{}, errors.New("svc: compressed-wire chunk without a negotiated wire codec")
	}
	if idx < 0 || idx >= len(sess.seen) {
		return PutReply{}, fmt.Errorf("svc: chunk index %d outside set of %d", idx, len(sess.seen))
	}
	f := sess.req.Fields[idx%len(sess.req.Fields)]
	if want := int64(f.Elems()) * 4; rawLen != want {
		return PutReply{}, fmt.Errorf(
			"svc: chunk %d declares %d raw B; field %q inflates to %d B", idx, rawLen, f.Name, want)
	}
	floats, _, err := container.Unpack(blob, container.Options{Parallelism: 1})
	if err != nil {
		return PutReply{}, fmt.Errorf("svc: chunk %d failed inflate verification: %w", idx, err)
	}
	if got := int64(len(floats)) * 4; got != rawLen {
		return PutReply{}, fmt.Errorf("svc: chunk %d inflates to %d B, declared %d B", idx, got, rawLen)
	}
	pr, err := s.put(sess, idx, blob)
	if err != nil {
		return PutReply{}, err
	}
	sess.wireSaved += s.cfg.Mount.Write(rawLen).NetworkSeconds -
		s.cfg.Mount.Write(int64(len(blob))).NetworkSeconds
	sess.wireChunks++
	return pr, nil
}

// closeSession finalizes the set (manifest + footer through ckpt's format
// helpers), attributes the session's energy at the tuned clocks, refunds
// the extent slack, and publishes the set for restore.
func (s *Server) closeSession(sess *session) (Result, error) {
	if sess.broken {
		return Result{}, errors.New("svc: session failed; nothing to finalize")
	}
	if sess.nSeen != len(sess.seen) {
		return Result{}, fmt.Errorf("svc: close with %d of %d chunks", sess.nSeen, len(sess.seen))
	}
	mOff := int64(ckpt.HeaderLen) + int64(sess.req.Ranks)*sess.stride
	total, err := ckpt.FinalizeSet(sess.view, sess.m, mOff)
	if err != nil {
		return Result{}, err
	}

	// The tail transfer (header flushed at open rides along here) takes
	// its turn on the shared medium like any chunk.
	tailBytes := int64(ckpt.HeaderLen) + (total - mOff)
	wireSec := s.cfg.Mount.Write(tailBytes).NetworkSeconds

	raw := sess.req.RawBytes()
	// transferBytes is what actually crossed the wire: header + chunks +
	// manifest + footer. Extent slack never moves, so this equals the
	// FileBytes of an identical local ckpt.Write — which is what makes
	// the energy attribution below reconcile exactly with a
	// phases.CheckpointCampaign of the same set.
	transferBytes := tailBytes + sess.payload
	ratio := float64(raw) / float64(sess.payload)
	// Feed the measured ratio into the tenant's advice model: the next
	// advise for this (codec, bound decade) prices with history, not the
	// server default.
	sess.ten.ratios.Observe(sess.req.Codec, sess.req.RelEB, ratio)
	compW, err := machine.CompressionWorkloadWithRatio(
		sess.req.Codec, raw, sess.req.RelEB, ratio, s.cfg.Chip)
	if err != nil {
		return Result{}, err
	}
	cs := s.node.RunClean(compW, s.fComp)
	ws := s.node.RunClean(machine.TransitWorkload(s.cfg.Mount.Write(transferBytes), s.cfg.Chip), s.fIO)

	s.mu.Lock()
	start := sess.simClock
	if s.mediumFree > start {
		sess.queueWait += s.mediumFree - start
		start = s.mediumFree
	}
	s.mediumFree = start + wireSec
	sess.simClock = start + wireSec

	ten := sess.ten
	ten.reserved -= sess.extCap
	ten.resident += total
	ten.active--
	ten.joules += cs.Joules + ws.Joules
	s.reclaimLocked(sess.base+sess.extCap, sess.base+total)
	sess.view.size = total
	sess.view.limit = total
	sess.done = true
	delete(s.sessions, sess.id)
	delete(s.openNames, sess.req.SetName)
	s.sets[sess.req.SetName] = &setRecord{
		tenant: ten.cfg.Name, base: sess.base, size: total,
		raw: raw, joules: cs.Joules + ws.Joules,
	}
	s.cond.Broadcast()
	s.mu.Unlock()

	res := Result{
		SetBytes:     transferBytes,
		PayloadBytes: sess.payload,
		RawBytes:     raw,
		Chunks:       len(sess.seen),

		CompressJoules: cs.Joules,
		TransitJoules:  ws.Joules,
		Joules:         cs.Joules + ws.Joules,

		QueueWaitSeconds:   sess.queueWait,
		SimSeconds:         sess.simClock,
		BackpressureEvents: sess.bp,
		GoodputBps:         float64(sess.payload) * 8 / sess.simClock,

		ExtentBase:           sess.base,
		ExtentBytes:          total,
		AdmissionWaitSeconds: sess.admitWait,

		WireCodec:          sess.wireCodec,
		WireSavedSeconds:   sess.wireSaved,
		WireVerifiedChunks: sess.wireChunks,
	}
	key := ten.key
	obs.AddFloat("lcpio_svc_joules_total", res.Joules)
	obs.AddFloat("lcpio_svc_tenant_"+key+"_joules_total", res.Joules)
	obs.AddFloat("lcpio_svc_tenant_"+key+"_queue_wait_seconds_total", res.QueueWaitSeconds)
	obs.AddFloat("lcpio_svc_tenant_"+key+"_bytes_total", float64(res.PayloadBytes))
	obs.Set("lcpio_svc_tenant_"+key+"_goodput_bps", res.GoodputBps)
	s.mu.Lock()
	obs.Set("lcpio_svc_active_sessions", float64(len(s.sessions)))
	s.mu.Unlock()
	return res, nil
}

// abort releases a dead session's reservation without publishing a set.
func (s *Server) abort(sess *session) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sess.done {
		return
	}
	sess.done = true
	ten := sess.ten
	ten.reserved -= sess.extCap
	ten.active--
	s.reclaimLocked(sess.base+sess.extCap, sess.base)
	delete(s.sessions, sess.id)
	delete(s.openNames, sess.req.SetName)
	obs.Add("lcpio_svc_aborted_total", 1)
	obs.Set("lcpio_svc_active_sessions", float64(len(s.sessions)))
	s.cond.Broadcast()
}

// List enumerates finalized sets, sorted by name.
func (s *Server) List() []SetEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	entries := make([]SetEntry, 0, len(s.sets))
	for name, rec := range s.sets {
		entries = append(entries, SetEntry{
			Name: name, Tenant: rec.tenant, Bytes: rec.size,
			Joules: rec.joules, RawByte: rec.raw,
		})
	}
	sort.Slice(entries, func(a, b int) bool { return entries[a].Name < entries[b].Name })
	return entries
}

// OpenSet returns a read-only medium view of a finalized set, positioned
// and sized so the unmodified ckpt.Restore / ckpt.Verify read it like a
// standalone file. The view forwards read penalties when the shared
// medium is cache-wrapped.
func (s *Server) OpenSet(name string) (ckpt.Medium, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec := s.sets[name]
	if rec == nil {
		return nil, fmt.Errorf("svc: no such set %q", name)
	}
	return &subMedium{inner: s.cfg.Medium, base: rec.base, size: rec.size, limit: rec.size}, nil
}

// restoreSet performs a server-side restore+verify of a finalized set and
// prices the read at the tuned writing clock.
func (s *Server) restoreSet(name string) (RestoreReply, error) {
	view, err := s.OpenSet(name)
	if err != nil {
		return RestoreReply{}, err
	}
	got, err := ckpt.Restore(view, ckpt.RestoreOptions{Mount: s.cfg.Mount})
	if err != nil {
		return RestoreReply{}, err
	}
	s.mu.Lock()
	rec := s.sets[name]
	s.mu.Unlock()
	tr := nfs.Transfer{PayloadBytes: rec.size, RPCs: 1, NetworkSeconds: got.Report.SimReadSeconds}
	readJ := s.node.RunClean(machine.TransitWorkload(tr, s.cfg.Chip), s.fIO).Joules
	ratio := 0.0
	if rec.size > 0 {
		ratio = float64(rec.raw) / float64(rec.size)
	}
	return RestoreReply{
		Chunks:          got.Manifest.NumChunks(),
		RawBytes:        rec.raw,
		SimReadSeconds:  got.Report.SimReadSeconds,
		ReadJoules:      readJ,
		DecompressRatio: ratio,
	}, nil
}

// TenantUsage reports a tenant's admission-ledger state (for tests and
// the CLI status view).
type TenantUsage struct {
	Name           string
	ActiveSessions int
	ResidentBytes  int64
	ReservedBytes  int64
	Joules         float64
}

// Usage returns the ledger row for one tenant.
func (s *Server) Usage(name string) (TenantUsage, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tenants[name]
	if !ok {
		return TenantUsage{}, false
	}
	return TenantUsage{
		Name: name, ActiveSessions: t.active,
		ResidentBytes: t.resident, ReservedBytes: t.reserved, Joules: t.joules,
	}, true
}

// subMedium is an offset-translating window onto the shared medium. Size()
// reports the window's logical size (the finalized set size after close),
// which is how ckpt.ReadManifest finds the footer without the set being
// alone on a medium.
type subMedium struct {
	inner ckpt.Medium
	base  int64
	size  int64
	limit int64
}

func (v *subMedium) Size() int64 { return v.size }

func (v *subMedium) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 || off+int64(len(p)) > v.limit {
		return 0, fmt.Errorf("svc: write [%d, %d) escapes extent of %d B", off, off+int64(len(p)), v.limit)
	}
	return v.inner.WriteAt(p, v.base+off)
}

func (v *subMedium) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 || off > v.size {
		return 0, io.EOF
	}
	n := len(p)
	var atEnd error
	if off+int64(n) > v.size {
		n = int(v.size - off)
		atEnd = io.EOF
	}
	rn, err := v.inner.ReadAt(p[:n], v.base+off)
	if err != nil {
		return rn, err
	}
	return rn, atEnd
}

// ReadPenaltySeconds forwards cache-eviction read penalties from a
// cache-wrapped shared medium, translating the window offset.
func (v *subMedium) ReadPenaltySeconds(off, n int64) float64 {
	if pm, ok := v.inner.(ckpt.ReadPenaltyMedium); ok {
		return pm.ReadPenaltySeconds(v.base+off, n)
	}
	return 0
}

// metricKey sanitizes a tenant name into a metric-name fragment.
func metricKey(name string) string {
	b := []byte(name)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '_':
		case c >= 'A' && c <= 'Z':
			b[i] = c + ('a' - 'A')
		default:
			b[i] = '_'
		}
	}
	return string(b)
}
