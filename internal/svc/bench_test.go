package svc

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"sync"
	"testing"

	"lcpio/internal/netsim"
	"lcpio/internal/nfs"
)

// svcSweepPoint is one tenant-count measurement of the daemon under a
// saturating mount.
type svcSweepPoint struct {
	Tenants                int     `json:"tenants"`
	MeanGoodputBps         float64 `json:"mean_goodput_bps"`
	AggregateGoodputBps    float64 `json:"aggregate_goodput_bps"`
	P99AdmissionWaitSec    float64 `json:"p99_admission_wait_seconds"`
	MeanQueueWaitSec       float64 `json:"mean_queue_wait_seconds"`
	BackpressureEvents     int64   `json:"backpressure_events"`
	MakespanSimSeconds     float64 `json:"makespan_sim_seconds"`
	JoulesTotal            float64 `json:"joules_total"`
	JoulesPerSessionMean   float64 `json:"joules_per_session_mean"`
	AdmissionWaitedCount   int     `json:"admission_waited_count"`
	BackpressuredSessCount int     `json:"backpressured_session_count"`
}

// runSvcSweepPoint drives `tenants` concurrent dump sessions against one
// daemon whose mount saturates and whose shared tenant allows only
// maxSessions concurrent dumps, so both admission queueing and medium
// backpressure show up as the count rises.
func runSvcSweepPoint(t *testing.T, tenants, maxSessions int) svcSweepPoint {
	t.Helper()
	slow := nfs.Mount{Link: netsim.Link{Name: "bench", BandwidthBps: 20e6, LatencySec: 5e-5, MTU: 9000}}
	srv := NewServer(Config{Mount: slow, SaturationWindow: 1e-3})
	if err := srv.AddTenant(TenantConfig{Name: "fleet", MaxSessions: maxSessions}); err != nil {
		t.Fatal(err)
	}
	results := make([]Result, tenants)
	errs := make([]error, tenants)
	var wg sync.WaitGroup
	for i := 0; i < tenants; i++ {
		cl := startPair(t, srv)
		wg.Add(1)
		go func(i int, cl *Client) {
			defer wg.Done()
			results[i], errs[i] = cl.Dump("fleet",
				genSet(fmt.Sprintf("bench-%d", i), 4, i), DumpOptions{Workers: 2})
		}(i, cl)
	}
	wg.Wait()

	pt := svcSweepPoint{Tenants: tenants}
	waits := make([]float64, 0, tenants)
	var payload int64
	for i, r := range results {
		if errs[i] != nil {
			t.Fatalf("tenant %d: %v", i, errs[i])
		}
		pt.MeanGoodputBps += r.GoodputBps / float64(tenants)
		pt.MeanQueueWaitSec += r.QueueWaitSeconds / float64(tenants)
		pt.BackpressureEvents += r.BackpressureEvents
		pt.JoulesTotal += r.Joules
		if r.SimSeconds > pt.MakespanSimSeconds {
			pt.MakespanSimSeconds = r.SimSeconds
		}
		if r.AdmissionWaitSeconds > 0 {
			pt.AdmissionWaitedCount++
		}
		if r.BackpressureEvents > 0 {
			pt.BackpressuredSessCount++
		}
		waits = append(waits, r.AdmissionWaitSeconds)
		payload += r.PayloadBytes
	}
	sort.Float64s(waits)
	pt.P99AdmissionWaitSec = waits[int(math.Ceil(0.99*float64(len(waits))))-1]
	pt.AggregateGoodputBps = float64(payload) * 8 / pt.MakespanSimSeconds
	pt.JoulesPerSessionMean = pt.JoulesTotal / float64(tenants)
	return pt
}

// TestEmitSvcBenchJSON is the scripts/bench.sh hook: with
// LCPIO_BENCH_SVC_OUT set it sweeps concurrent tenant counts against one
// daemon and writes BENCH_svc.json — per-tenant and aggregate goodput,
// p99 admission latency, queue waits, and the saturation knee (the first
// tenant count whose sessions report backpressure). Without the env var
// it is a no-op skip.
func TestEmitSvcBenchJSON(t *testing.T) {
	out := os.Getenv("LCPIO_BENCH_SVC_OUT")
	if out == "" {
		t.Skip("LCPIO_BENCH_SVC_OUT not set")
	}
	counts := []int{1, 2, 4, 8, 16}
	points := make([]svcSweepPoint, 0, len(counts))
	knee := 0
	for _, n := range counts {
		pt := runSvcSweepPoint(t, n, 4)
		points = append(points, pt)
		if knee == 0 && pt.BackpressureEvents > 0 {
			knee = n
		}
	}
	// Sanity: contention must grow with tenant count — the knee exists
	// and per-session goodput at the top of the sweep is below the
	// uncontended point.
	if knee == 0 {
		t.Fatal("no sweep point engaged backpressure; the bench mount is not saturating")
	}
	solo, top := points[0], points[len(points)-1]
	if top.MeanGoodputBps >= solo.MeanGoodputBps {
		t.Fatalf("per-session goodput did not degrade under contention: %.0f bps at %d tenants vs %.0f solo",
			top.MeanGoodputBps, top.Tenants, solo.MeanGoodputBps)
	}
	doc := map[string]any{
		"max_sessions":          4,
		"saturation_knee":       knee,
		"sweep":                 points,
		"solo_goodput_bps":      solo.MeanGoodputBps,
		"contended_goodput_bps": top.MeanGoodputBps,
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
