// Package rapl simulates Intel RAPL (Running Average Power Limit) energy
// accounting, replacing the `perf stat -e power/energy-pkg/` measurements
// the paper takes. It models the two artifacts that make real RAPL access
// "awkward" (per the reproduction notes): counters tick in integer
// microjoule-scale energy units and wrap around 32 bits, so correct readers
// must sample fast enough and unwrap deltas.
//
// A Meter integrates power over the phases of a simulated run and drives
// per-domain Counters; a Session pairs two counter snapshots into the
// (energy, runtime) sample the experiment harness consumes — exactly what
// `perf stat` would print.
package rapl

import (
	"fmt"
	"math"
)

// Domain identifies a RAPL measurement domain.
type Domain int

const (
	// Package covers the whole CPU socket: cores, caches, uncore.
	Package Domain = iota
	// DRAM covers the memory subsystem.
	DRAM
	numDomains
)

func (d Domain) String() string {
	switch d {
	case Package:
		return "energy-pkg"
	case DRAM:
		return "energy-ram"
	default:
		return fmt.Sprintf("Domain(%d)", int(d))
	}
}

// energyUnit is the counter granularity in joules. Real RAPL units are
// 2^-ESU joules with ESU typically 14 (61 microjoules); we use 2^-14.
const energyUnit = 1.0 / (1 << 14)

// counterMask wraps counters at 32 bits, as the MSR does.
const counterMask = (1 << 32) - 1

// Counter is a wrapping RAPL energy counter.
type Counter struct {
	raw float64 // accumulated energy units, unwrapped (internal truth)
}

// Add deposits joules into the counter.
func (c *Counter) Add(joules float64) {
	if joules < 0 || math.IsNaN(joules) {
		return
	}
	c.raw += joules / energyUnit
}

// Read returns the current 32-bit wrapped counter value, as an MSR read
// would.
func (c *Counter) Read() uint32 {
	return uint32(uint64(c.raw) & counterMask)
}

// DeltaJoules unwraps the difference between two 32-bit counter readings,
// assuming at most one wrap between samples (the reader's responsibility,
// as with real RAPL).
func DeltaJoules(before, after uint32) float64 {
	d := uint64(after) - uint64(before)
	if after < before {
		d = (1<<32 - uint64(before)) + uint64(after)
	}
	return float64(d) * energyUnit
}

// Meter integrates per-domain energy over the phases of a simulated run.
// The zero value is ready to use.
type Meter struct {
	counters [numDomains]Counter
	elapsed  float64
}

// AddPhase records a phase of `seconds` during which the domain drew
// `watts`. Elapsed time advances only for Package phases, which represent
// wall-clock program phases; DRAM deposits are concurrent.
func (m *Meter) AddPhase(d Domain, watts, seconds float64) {
	if seconds < 0 || watts < 0 {
		return
	}
	m.counters[d].Add(watts * seconds)
	if d == Package {
		m.elapsed += seconds
	}
}

// Counter exposes the wrapping counter for a domain.
func (m *Meter) Counter(d Domain) *Counter { return &m.counters[d] }

// Energy returns the total unwrapped energy of a domain in joules.
func (m *Meter) Energy(d Domain) float64 {
	return m.counters[d].raw * energyUnit
}

// Elapsed returns the accumulated wall-clock seconds.
func (m *Meter) Elapsed() float64 { return m.elapsed }

// Report is the perf-stat-style summary of one measured run.
type Report struct {
	PackageJoules float64
	DRAMJoules    float64
	Seconds       float64
}

// TotalJoules sums all domains.
func (r Report) TotalJoules() float64 { return r.PackageJoules + r.DRAMJoules }

// AvgPowerWatts is total energy over runtime (Eqn 1 rearranged).
func (r Report) AvgPowerWatts() float64 {
	if r.Seconds <= 0 {
		return 0
	}
	return r.TotalJoules() / r.Seconds
}

func (r Report) String() string {
	return fmt.Sprintf("%.3f J energy-pkg, %.3f J energy-ram, %.4f s elapsed (%.2f W avg)",
		r.PackageJoules, r.DRAMJoules, r.Seconds, r.AvgPowerWatts())
}

// Session measures a region of simulated execution the way `perf stat`
// brackets a process: snapshot counters at start, snapshot at stop, unwrap.
type Session struct {
	meter     *Meter
	startPkg  uint32
	startDRAM uint32
	startTime float64
	pkgAccum  float64 // unwrapped deltas accumulated across re-samples
	dramAccum float64
	running   bool
}

// Start begins a measurement session over m.
func Start(m *Meter) *Session {
	return &Session{
		meter:     m,
		startPkg:  m.counters[Package].Read(),
		startDRAM: m.counters[DRAM].Read(),
		startTime: m.elapsed,
		running:   true,
	}
}

// Sample unwraps counter progress since the last sample (or Start) and must
// be called at least once per wrap period, mirroring a real RAPL reader's
// polling duty.
func (s *Session) Sample() {
	if !s.running {
		return
	}
	pkg := s.meter.counters[Package].Read()
	dram := s.meter.counters[DRAM].Read()
	s.pkgAccum += DeltaJoules(s.startPkg, pkg)
	s.dramAccum += DeltaJoules(s.startDRAM, dram)
	s.startPkg, s.startDRAM = pkg, dram
}

// Stop finalizes the session and returns the report.
func (s *Session) Stop() Report {
	if s.running {
		s.Sample()
		s.running = false
	}
	return Report{
		PackageJoules: s.pkgAccum,
		DRAMJoules:    s.dramAccum,
		Seconds:       s.meter.elapsed - s.startTime,
	}
}
