package rapl

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeterIntegration(t *testing.T) {
	var m Meter
	m.AddPhase(Package, 15, 2)   // 30 J
	m.AddPhase(Package, 10, 0.5) // 5 J
	m.AddPhase(DRAM, 3, 2.5)     // 7.5 J
	if e := m.Energy(Package); math.Abs(e-35) > 0.01 {
		t.Fatalf("package energy %v, want 35", e)
	}
	if e := m.Energy(DRAM); math.Abs(e-7.5) > 0.01 {
		t.Fatalf("dram energy %v, want 7.5", e)
	}
	if el := m.Elapsed(); math.Abs(el-2.5) > 1e-9 {
		t.Fatalf("elapsed %v, want 2.5 (DRAM phases must not advance time)", el)
	}
}

func TestMeterRejectsNegativePhases(t *testing.T) {
	var m Meter
	m.AddPhase(Package, -5, 1)
	m.AddPhase(Package, 5, -1)
	if m.Energy(Package) != 0 || m.Elapsed() != 0 {
		t.Fatal("negative phases must be ignored")
	}
}

func TestCounterQuantization(t *testing.T) {
	var c Counter
	c.Add(1.0)
	// One joule = 2^14 units.
	if got := c.Read(); got != 1<<14 {
		t.Fatalf("Read = %d, want %d", got, 1<<14)
	}
	c.Add(math.NaN())
	if got := c.Read(); got != 1<<14 {
		t.Fatalf("NaN add changed counter: %d", got)
	}
}

func TestDeltaJoulesSimple(t *testing.T) {
	if d := DeltaJoules(0, 1<<14); math.Abs(d-1) > 1e-9 {
		t.Fatalf("delta %v, want 1 J", d)
	}
	if d := DeltaJoules(100, 100); d != 0 {
		t.Fatalf("zero delta %v", d)
	}
}

func TestDeltaJoulesWraparound(t *testing.T) {
	// A reading that wrapped past 2^32 must unwrap correctly.
	before := uint32(0xFFFFF000)
	after := uint32(0x00000100)
	wantUnits := float64(0x1000 + 0x100)
	if d := DeltaJoules(before, after); math.Abs(d-wantUnits*energyUnit) > 1e-9 {
		t.Fatalf("wrapped delta %v, want %v", d, wantUnits*energyUnit)
	}
}

func TestSessionMatchesMeter(t *testing.T) {
	var m Meter
	m.AddPhase(Package, 12, 1) // pre-session energy: must be excluded
	s := Start(&m)
	m.AddPhase(Package, 14, 3)
	m.AddPhase(DRAM, 2, 3)
	r := s.Stop()
	if math.Abs(r.PackageJoules-42) > 0.01 {
		t.Fatalf("session pkg %v, want 42", r.PackageJoules)
	}
	if math.Abs(r.DRAMJoules-6) > 0.01 {
		t.Fatalf("session dram %v, want 6", r.DRAMJoules)
	}
	if math.Abs(r.Seconds-3) > 1e-9 {
		t.Fatalf("session time %v, want 3", r.Seconds)
	}
	if math.Abs(r.AvgPowerWatts()-16) > 0.02 {
		t.Fatalf("avg power %v, want 16", r.AvgPowerWatts())
	}
	// Stop is idempotent.
	r2 := s.Stop()
	if r2.PackageJoules != r.PackageJoules {
		t.Fatal("Stop not idempotent")
	}
}

func TestSessionSurvivesCounterWrap(t *testing.T) {
	var m Meter
	s := Start(&m)
	// 2^32 units * 2^-14 J/unit = 262144 J per wrap. Deposit 3 wraps worth
	// in chunks, sampling between chunks as a dutiful reader would.
	chunk := 200000.0
	for i := 0; i < 4; i++ {
		m.AddPhase(Package, chunk, 1)
		s.Sample()
	}
	r := s.Stop()
	if math.Abs(r.PackageJoules-4*chunk) > 1 {
		t.Fatalf("wrapped session energy %v, want %v", r.PackageJoules, 4*chunk)
	}
}

func TestReportString(t *testing.T) {
	r := Report{PackageJoules: 10, DRAMJoules: 2, Seconds: 4}
	if r.TotalJoules() != 12 {
		t.Fatalf("TotalJoules %v", r.TotalJoules())
	}
	if r.AvgPowerWatts() != 3 {
		t.Fatalf("AvgPowerWatts %v", r.AvgPowerWatts())
	}
	if s := r.String(); s == "" {
		t.Fatal("empty String")
	}
	zero := Report{}
	if zero.AvgPowerWatts() != 0 {
		t.Fatal("zero-time avg power must be 0")
	}
}

func TestDomainString(t *testing.T) {
	if Package.String() != "energy-pkg" || DRAM.String() != "energy-ram" {
		t.Fatal("domain names")
	}
	if Domain(9).String() == "" {
		t.Fatal("unknown domain should render")
	}
}

// Property: for any sequence of positive deposits with interleaved samples,
// the session total equals the meter total (unwrapping never loses energy).
func TestQuickUnwrapLossless(t *testing.T) {
	f := func(deposits []uint16) bool {
		var m Meter
		s := Start(&m)
		var want float64
		for _, d := range deposits {
			j := float64(d) // up to 65535 J per deposit, well under a wrap
			m.AddPhase(Package, j, 1)
			want += j
			s.Sample()
		}
		r := s.Stop()
		return math.Abs(r.PackageJoules-want) <= 1e-3*math.Max(want, 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
