// Package transit models in-transit lossy compression: compressing message
// payloads on the wire so communication-bound exchanges trade CPU cycles
// for link bandwidth. It answers the two research questions of SNIPPETS §2
// (jpekkila, data compression for communication-bound HPC) inside this
// repo's framework:
//
//  1. Overhead vs. saving — when does compressing a payload beat shipping
//     it raw? A Channel prices compression compute with the machine model
//     (Eqn 2 at the phases.Rule tuned clocks, the same arithmetic as the
//     campaign planner) and transfer time with the netsim link model, and
//     BreakEven emits the closed-form break-even link bandwidth per
//     codec/bound, cross-checked by an exhaustive sweep.
//  2. Ratio vs. quality — what did the bytes saved cost? Every send runs
//     the real codec round trip and reports ULP error (stats.ULPError)
//     plus, via the chaos steppers in this package, the divergence horizon
//     of a chaotic system advanced from the reconstructed state.
//
// Transfers through a Channel are simulated on a deterministic timeline:
// chunk compression fans out over Workers model lanes, the wire leg
// serializes on the link (queue wait behind earlier chunks is observable),
// and decompression pipelines at the receiver. Real codec work is threaded
// through obs spans and pipeline occupancy clocks; energy is attributed to
// spans exactly (AddEnergy), so a traced batch reconciles with the
// in-transit phases campaign.
package transit

import (
	"fmt"
	"math"
	"sync"

	"lcpio/internal/compress"
	"lcpio/internal/dvfs"
	"lcpio/internal/machine"
	"lcpio/internal/netsim"
	"lcpio/internal/obs"
	"lcpio/internal/par"
	"lcpio/internal/phases"
	"lcpio/internal/stats"
)

// CodecRaw ships payloads uncompressed — the baseline side of every
// break-even comparison.
const CodecRaw = "raw"

// Config describes one compressed channel.
type Config struct {
	// Link is the network path (use netsim.Custom for swept geometries).
	Link netsim.Link
	// Codec is CodecRaw or a registered lossy codec ("sz", "zfp", "squant").
	Codec string
	// RelEB is the range-relative error bound for lossy codecs
	// (0 = 1e-3, the paper's headline operating point).
	RelEB float64
	// Chip prices compute (nil = Broadwell, the paper's reference node).
	Chip *dvfs.Chip
	// Rule selects the DVFS operating points (zero = phases.PaperRule):
	// compression at CompressionFraction×base, the wire leg at
	// WritingFraction×base.
	Rule phases.Rule
	// Workers is the codec parallelism and the number of model lanes in the
	// simulated compress/decompress pipelines (0 = 1).
	Workers int
}

// Payload is one message to ship: a float32 field plus its dimensions.
type Payload struct {
	Data []float32
	Dims []int
}

// Elems returns the element count implied by the dims.
func (p Payload) Elems() int {
	n := 1
	for _, d := range p.Dims {
		n *= d
	}
	return n
}

// Message is the accounting for one payload through the channel.
type Message struct {
	Index     int
	RawBytes  int64
	WireBytes int64 // payload bytes actually clocked onto the link
	Ratio     float64

	// Simulated seconds at the tuned clocks.
	CompressSeconds   float64
	WireSeconds       float64
	QueueWaitSeconds  float64 // waited for the link behind earlier chunks
	DecompressSeconds float64

	// Simulated joules at the tuned clocks.
	CompressJoules   float64
	WireJoules       float64
	DecompressJoules float64

	// Counterfactual: the same payload shipped raw.
	RawWireSeconds float64
	RawWireJoules  float64

	// Quality of the reconstruction (zero distances for CodecRaw).
	ULP stats.ULPStats

	// Data is the receiver-side reconstruction; Dims its shape.
	Data []float32
	Dims []int
}

// Joules is the message's total modeled energy.
func (m Message) Joules() float64 {
	return m.CompressJoules + m.WireJoules + m.DecompressJoules
}

// Batch aggregates one SendAll call.
type Batch struct {
	Codec    string
	RelEB    float64
	Link     netsim.Link
	Messages []Message

	RawBytes  int64
	WireBytes int64
	Ratio     float64 // aggregate raw/wire

	// SimSeconds is the batch makespan on the simulated timeline: compress
	// lanes feed the serialized link, decompress lanes drain arrivals.
	SimSeconds float64
	// RawSimSeconds is the counterfactual makespan shipping every payload
	// uncompressed (no compute, wire legs back to back).
	RawSimSeconds    float64
	QueueWaitSeconds float64

	Joules    float64 // compress + wire + decompress
	RawJoules float64 // counterfactual raw wire energy

	ULP stats.ULPStats
}

// GoodputBps is application-payload throughput through the channel.
func (b Batch) GoodputBps() float64 {
	if b.SimSeconds <= 0 {
		return 0
	}
	return float64(b.RawBytes) * 8 / b.SimSeconds
}

// RawGoodputBps is the counterfactual raw-wire throughput.
func (b Batch) RawGoodputBps() float64 {
	if b.RawSimSeconds <= 0 {
		return 0
	}
	return float64(b.RawBytes) * 8 / b.RawSimSeconds
}

// TimeSavedSeconds is positive when compressing beat shipping raw.
func (b Batch) TimeSavedSeconds() float64 { return b.RawSimSeconds - b.SimSeconds }

// EnergySavedJoules is positive when compressing spent less energy.
func (b Batch) EnergySavedJoules() float64 { return b.RawJoules - b.Joules }

// Channel is a link plus a codec operating point. Methods are not safe for
// concurrent use (the codec handles carry reusable scratch); open one
// channel per goroutine, as with compress.Handle.
type Channel struct {
	cfg   Config
	lanes []compress.Handle // nil for CodecRaw
	node  *machine.Node
	fComp float64
	fIO   float64
}

// New validates the config and opens the channel.
func New(cfg Config) (*Channel, error) {
	if cfg.Link.BandwidthBps <= 0 {
		return nil, fmt.Errorf("transit: link %q has no bandwidth", cfg.Link.Name)
	}
	if cfg.Chip == nil {
		cfg.Chip = dvfs.Broadwell()
	}
	if cfg.Rule == (phases.Rule{}) {
		cfg.Rule = phases.PaperRule()
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.Codec == "" {
		cfg.Codec = CodecRaw
	}
	if cfg.RelEB == 0 {
		cfg.RelEB = 1e-3
	}
	if cfg.RelEB < 0 || cfg.RelEB >= 1 {
		return nil, fmt.Errorf("transit: relative error bound %g outside [0, 1)", cfg.RelEB)
	}
	c := &Channel{
		cfg:   cfg,
		node:  machine.NewNode(cfg.Chip, 1), // RunClean only: seed is inert
		fComp: cfg.Chip.ClampFreq(cfg.Rule.CompressionFraction * cfg.Chip.BaseGHz),
		fIO:   cfg.Chip.ClampFreq(cfg.Rule.WritingFraction * cfg.Chip.BaseGHz),
	}
	if cfg.Codec != CodecRaw {
		c.lanes = make([]compress.Handle, cfg.Workers)
		for i := range c.lanes {
			h, err := compress.NewHandle(cfg.Codec, cfg.Workers)
			if err != nil {
				return nil, fmt.Errorf("transit: %w", err)
			}
			c.lanes[i] = h
		}
	}
	return c, nil
}

// Config returns the channel's resolved configuration.
func (c *Channel) Config() Config { return c.cfg }

// Send ships one payload (a SendAll of one message).
func (c *Channel) Send(p Payload) (Message, error) {
	b, err := c.SendAll([]Payload{p})
	if err != nil {
		return Message{}, err
	}
	return b.Messages[0], nil
}

// SendAll ships the payloads through the channel in order: each is
// compressed for real (lossy codecs), clocked over the link on a simulated
// serialized timeline, decompressed at the receiver, and priced with the
// machine model at the tuned clocks. The reconstruction and its ULP error
// ride back on every Message.
func (c *Channel) SendAll(ps []Payload) (Batch, error) {
	if len(ps) == 0 {
		return Batch{}, fmt.Errorf("transit: empty batch")
	}
	for i, p := range ps {
		if len(p.Data) == 0 {
			return Batch{}, fmt.Errorf("transit: payload %d is empty", i)
		}
		if p.Elems() != len(p.Data) {
			return Batch{}, fmt.Errorf("transit: payload %d dims %v disagree with %d elements",
				i, p.Dims, len(p.Data))
		}
	}

	span := obs.Start("transit.batch")
	if span.Enabled() {
		span.SetAttr("codec", c.cfg.Codec)
		span.SetAttr("link", c.cfg.Link.Name)
		span.SetAttr("messages", fmt.Sprint(len(ps)))
	}
	defer span.End()

	msgs := make([]Message, len(ps))
	firstErr := struct {
		sync.Mutex
		err error
	}{}

	// Real codec round trip, fanned out over the channel lanes; the obs
	// pipeline clocks record where the wall time went.
	pt := obs.StartPipeline("transit.channel", c.cfg.Workers)
	par.RunWorker(len(ps), c.cfg.Workers, func(w, i int) {
		clock := pt.Worker(w)
		if err := c.roundTrip(clock, w, i, ps[i], &msgs[i]); err != nil {
			firstErr.Lock()
			if firstErr.err == nil {
				firstErr.err = err
			}
			firstErr.Unlock()
		}
		clock.WaitInput()
	})
	pt.End()
	if firstErr.err != nil {
		return Batch{}, firstErr.err
	}

	b := Batch{Codec: c.cfg.Codec, RelEB: c.cfg.RelEB, Link: c.cfg.Link, Messages: msgs}
	c.simulate(&b)
	c.price(&b, span)
	return b, nil
}

// roundTrip runs the real codec on one payload and fills the message's
// byte/ratio/quality fields. Timing and energy are modeled later (simulate/
// price) so they are deterministic, not wall-clock.
func (c *Channel) roundTrip(clock *obs.WorkerClock, lane, idx int, p Payload, m *Message) error {
	m.Index = idx
	m.RawBytes = int64(len(p.Data)) * 4
	m.Dims = append([]int(nil), p.Dims...)

	if c.lanes == nil { // raw channel: the wire carries the payload as-is
		m.WireBytes = m.RawBytes
		m.Ratio = 1
		m.Data = append([]float32(nil), p.Data...)
		m.ULP = stats.ULPStats{Count: len(p.Data), ExactShare: 1}
		return nil
	}

	h := c.lanes[lane]
	clock.Run("compress")
	buf, err := h.Compress(p.Data, p.Dims, absBound(p.Data, c.cfg.RelEB))
	if err != nil {
		return fmt.Errorf("transit: compress payload %d: %w", idx, err)
	}
	wireBytes := int64(len(buf))

	clock.Run("decompress")
	recon, dims, err := h.Decompress(buf)
	if err != nil {
		return fmt.Errorf("transit: decompress payload %d: %w", idx, err)
	}
	m.WireBytes = wireBytes
	m.Ratio = float64(m.RawBytes) / float64(m.WireBytes)
	m.Data = append([]float32(nil), recon...)
	m.Dims = append([]int(nil), dims...)
	m.ULP, err = stats.ULPError(p.Data, m.Data)
	if err != nil {
		return fmt.Errorf("transit: payload %d: %w", idx, err)
	}
	return nil
}

// simulate lays the batch out on the deterministic timeline: Workers
// compress lanes feed a single serialized link, and Workers decompress
// lanes drain arrivals at the receiver.
func (c *Channel) simulate(b *Batch) {
	w := c.cfg.Workers
	compFree := make([]float64, w)
	decFree := make([]float64, w)
	var linkFree, rawClock, makespan float64

	for i := range b.Messages {
		m := &b.Messages[i]
		lane := i % w

		// Seconds at the tuned clocks, from the same workload models the
		// campaign planner prices.
		if c.lanes != nil {
			cw, dw := c.workloads(m)
			m.CompressSeconds = c.node.RunClean(cw, c.fComp).Seconds
			m.DecompressSeconds = c.node.RunClean(dw, c.fComp).Seconds
		}
		m.WireSeconds = c.cfg.Link.MessageTime(m.WireBytes)
		m.RawWireSeconds = c.cfg.Link.MessageTime(m.RawBytes)

		compDone := compFree[lane] + m.CompressSeconds
		compFree[lane] = compDone
		wireStart := math.Max(compDone, linkFree)
		m.QueueWaitSeconds = wireStart - compDone
		arrival := wireStart + m.WireSeconds
		linkFree = arrival
		decDone := math.Max(arrival, decFree[lane]) + m.DecompressSeconds
		decFree[lane] = decDone
		makespan = math.Max(makespan, decDone)

		rawClock += m.RawWireSeconds
		b.QueueWaitSeconds += m.QueueWaitSeconds
	}
	b.SimSeconds = makespan
	b.RawSimSeconds = rawClock
}

// price attributes modeled joules to each message and rolls up the batch;
// exact energy lands on child spans (AddEnergy) so a traced batch
// reconciles with the campaign planner.
func (c *Channel) price(b *Batch, span obs.Span) {
	var ulpSum float64
	var exact float64
	for i := range b.Messages {
		m := &b.Messages[i]
		if c.lanes != nil {
			cw, dw := c.workloads(m)
			m.CompressJoules = c.node.RunClean(cw, c.fComp).Joules
			m.DecompressJoules = c.node.RunClean(dw, c.fComp).Joules
		}
		wireW := machine.LinkTransitWorkload(m.WireBytes, c.cfg.Link, c.cfg.Chip)
		m.WireJoules = c.node.RunClean(wireW, c.fIO).Joules
		rawW := machine.LinkTransitWorkload(m.RawBytes, c.cfg.Link, c.cfg.Chip)
		m.RawWireJoules = c.node.RunClean(rawW, c.fIO).Joules

		b.RawBytes += m.RawBytes
		b.WireBytes += m.WireBytes
		b.Joules += m.Joules()
		b.RawJoules += m.RawWireJoules
		ulpSum += m.ULP.Mean * float64(m.ULP.Count)
		exact += m.ULP.ExactShare * float64(m.ULP.Count)
		b.ULP.Count += m.ULP.Count
		if m.ULP.Max > b.ULP.Max {
			b.ULP.Max = m.ULP.Max
			b.ULP.MaxIndex = m.Index
		}

		if span.Enabled() {
			cs := span.Child("transit.compress")
			cs.AddEnergy(m.CompressJoules)
			cs.End()
			ws := span.Child("transit.wire")
			ws.AddEnergy(m.WireJoules)
			ws.End()
			ds := span.Child("transit.decompress")
			ds.AddEnergy(m.DecompressJoules)
			ds.End()
		}
	}
	if b.WireBytes > 0 {
		b.Ratio = float64(b.RawBytes) / float64(b.WireBytes)
	}
	if b.ULP.Count > 0 {
		b.ULP.Mean = ulpSum / float64(b.ULP.Count)
		b.ULP.ExactShare = exact / float64(b.ULP.Count)
	}
}

// workloads builds the message's compute workloads at the measured ratio.
func (c *Channel) workloads(m *Message) (compW, decW machine.Workload) {
	compW, _ = machine.CompressionWorkloadWithRatio(c.cfg.Codec, m.RawBytes, c.cfg.RelEB, m.Ratio, c.cfg.Chip)
	decW, _ = machine.DecompressionWorkload(c.cfg.Codec, m.RawBytes, c.cfg.RelEB, m.Ratio, c.cfg.Chip)
	return compW, decW
}

// Campaign builds an n-iteration in-transit phases.Plan from measured batch
// economics: each iteration computes for computeSec, compresses the batch's
// raw bytes at its aggregate ratio, ships the compressed bytes, and
// decompresses at the receiver. Executing the plan (after ApplyRule with
// the channel's rule) reproduces the batch's modeled energy.
func (c *Channel) Campaign(b Batch, n int, computeSec float64) (phases.Plan, error) {
	if c.lanes == nil {
		return phases.Plan{}, fmt.Errorf("transit: campaign needs a lossy codec, channel is %s", CodecRaw)
	}
	if b.RawBytes <= 0 || b.Ratio <= 0 {
		return phases.Plan{}, fmt.Errorf("transit: batch carries no data")
	}
	compW, err := machine.CompressionWorkloadWithRatio(c.cfg.Codec, b.RawBytes, c.cfg.RelEB, b.Ratio, c.cfg.Chip)
	if err != nil {
		return phases.Plan{}, err
	}
	decW, err := machine.DecompressionWorkload(c.cfg.Codec, b.RawBytes, c.cfg.RelEB, b.Ratio, c.cfg.Chip)
	if err != nil {
		return phases.Plan{}, err
	}
	sendW := machine.LinkTransitWorkload(b.WireBytes, c.cfg.Link, c.cfg.Chip)
	return phases.InTransitCampaign(n, computeSec, compW, sendW, decW), nil
}

// absBound converts the channel's range-relative bound to the absolute
// bound the codec handles take, guarding constant fields.
func absBound(data []float32, relEB float64) float64 {
	lo, hi := data[0], data[0]
	for _, v := range data[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	rng := float64(hi) - float64(lo)
	if rng <= 0 {
		rng = math.Abs(float64(hi))
		if rng == 0 {
			rng = 1
		}
	}
	return relEB * rng
}
