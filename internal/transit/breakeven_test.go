package transit

import (
	"math"
	"testing"

	"lcpio/internal/netsim"
)

// TestBreakEvenMatchesSweep is the ISSUE acceptance check: the closed-form
// break-even bandwidth must agree with an exhaustive sweep within 1% on at
// least two codecs at two bounds each.
func TestBreakEvenMatchesSweep(t *testing.T) {
	p := testPayload(t, 11)
	for _, codec := range []string{"sz", "zfp"} {
		for _, relEB := range []float64{1e-3, 1e-5} {
			c := newTestChannel(t, codec, relEB, 1)
			e, err := c.BreakEven(p)
			if err != nil {
				t.Fatalf("%s/%g: %v", codec, relEB, err)
			}
			if e.BreakEvenBps <= 0 || math.IsInf(e.BreakEvenBps, 0) {
				t.Fatalf("%s/%g: degenerate break-even %g (ratio %g)",
					codec, relEB, e.BreakEvenBps, e.Ratio)
			}
			sweep := e.SweepBreakEven(1e6, 1e13, 200)
			rel := math.Abs(sweep-e.BreakEvenBps) / e.BreakEvenBps
			if rel > 0.01 {
				t.Errorf("%s/%g: closed form %.4g bps vs sweep %.4g bps (rel %.3g >= 1%%)",
					codec, relEB, e.BreakEvenBps, sweep, rel)
			}
			if e.EnergyBreakEvenBps <= 0 || math.IsInf(e.EnergyBreakEvenBps, 0) {
				t.Errorf("%s/%g: degenerate energy break-even %g",
					codec, relEB, e.EnergyBreakEvenBps)
			}
		}
	}
}

// TestBreakEvenSidesAgreeWithChannel cross-checks the Economics arithmetic
// against an actual channel batch at the same bandwidth: compressing must
// win below break-even and lose above it.
func TestBreakEvenSidesAgreeWithChannel(t *testing.T) {
	p := testPayload(t, 12)
	base := newTestChannel(t, "sz", 1e-3, 1)
	e, err := base.BreakEven(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		factor  float64
		wantWin bool
	}{
		{0.25, true}, // link 4x slower than break-even: compress
		{4.0, false}, // link 4x faster: ship raw
	} {
		bps := e.BreakEvenBps * tc.factor
		link := netsim.TenGbE().WithBandwidth(bps)
		c, err := New(Config{Link: link, Codec: "sz", RelEB: 1e-3})
		if err != nil {
			t.Fatal(err)
		}
		b, err := c.SendAll([]Payload{p})
		if err != nil {
			t.Fatal(err)
		}
		if win := b.TimeSavedSeconds() > 0; win != tc.wantWin {
			t.Errorf("at %.3g bps (%.2gx break-even): time saved %g s, want win=%v",
				bps, tc.factor, b.TimeSavedSeconds(), tc.wantWin)
		}
	}
}

// TestBreakEvenMonotoneInLinkBandwidth is the netsim.Custom property test:
// for a fixed payload, time saved by compressing decreases monotonically as
// the link gets faster, and the break-even bandwidth itself is invariant to
// which bandwidth the channel was constructed with.
func TestBreakEvenMonotoneInLinkBandwidth(t *testing.T) {
	p := testPayload(t, 13)
	var prevSaved float64
	var prevBE float64
	for i, gbps := range []float64{0.1, 1, 10, 40, 100} {
		link, err := netsim.Custom("sweep", gbps*1e9, 50e-6, 1500, 66)
		if err != nil {
			t.Fatal(err)
		}
		c, err := New(Config{Link: link, Codec: "zfp", RelEB: 1e-3})
		if err != nil {
			t.Fatal(err)
		}
		e, err := c.BreakEven(p)
		if err != nil {
			t.Fatal(err)
		}
		saved := e.TimeSavedSeconds(link.BandwidthBps)
		if i > 0 {
			if saved >= prevSaved {
				t.Errorf("time saved not strictly decreasing: %g bps saves %g s, slower link saved %g s",
					link.BandwidthBps, saved, prevSaved)
			}
			if rel := math.Abs(e.BreakEvenBps-prevBE) / prevBE; rel > 1e-9 {
				t.Errorf("break-even drifted with construction bandwidth: %g vs %g", e.BreakEvenBps, prevBE)
			}
		}
		prevSaved, prevBE = saved, e.BreakEvenBps
	}
}

func TestBreakEvenBpsClosedFormEdges(t *testing.T) {
	link := netsim.TenGbE()
	if got := BreakEvenBps(link, 1000, 1000, 1e-3); got != 0 {
		t.Errorf("incompressible payload: break-even %g, want 0", got)
	}
	if got := BreakEvenBps(link, 1000, 2000, 1e-3); got != 0 {
		t.Errorf("expanding payload: break-even %g, want 0", got)
	}
	if got := BreakEvenBps(link, 1000, 100, 0); !math.IsInf(got, 1) {
		t.Errorf("free compute: break-even %g, want +Inf", got)
	}
	// Framing matters: jumbo frames ship fewer header bytes, so the wire
	// saving shrinks and the break-even point drops.
	std := BreakEvenBps(netsim.TenGbE(), 1<<20, 1<<17, 1e-3)
	jumbo := BreakEvenBps(netsim.JumboTenGbE(), 1<<20, 1<<17, 1e-3)
	if jumbo >= std {
		t.Errorf("jumbo framing %g should break even below standard %g", jumbo, std)
	}
}

func TestSweepTable(t *testing.T) {
	p := testPayload(t, 14)
	c := newTestChannel(t, "sz", 1e-3, 1)
	e, err := c.BreakEven(p)
	if err != nil {
		t.Fatal(err)
	}
	pts := e.Sweep([]float64{e.BreakEvenBps / 10, e.BreakEvenBps * 10})
	if len(pts) != 2 {
		t.Fatalf("want 2 points, got %d", len(pts))
	}
	if !pts[0].CompressionWins || pts[1].CompressionWins {
		t.Errorf("winner flags wrong around break-even: %+v", pts)
	}
	if pts[0].GoodputBps <= pts[0].RawGoodputBps {
		t.Errorf("below break-even compressed goodput %g should beat raw %g",
			pts[0].GoodputBps, pts[0].RawGoodputBps)
	}
}

func TestCustomLinkDegenerateInputs(t *testing.T) {
	cases := []struct {
		name     string
		bps, lat float64
		mtu, hdr int
	}{
		{"zero bandwidth", 0, 0, 1500, 66},
		{"negative bandwidth", -1, 0, 1500, 66},
		{"inf bandwidth", math.Inf(1), 0, 1500, 66},
		{"nan latency", 1e9, math.NaN(), 1500, 66},
		{"negative latency", 1e9, -1e-6, 1500, 66},
		{"tiny mtu", 1e9, 0, 66, 66},
		{"negative headers", 1e9, 0, 1500, -1},
	}
	for _, tc := range cases {
		if _, err := netsim.Custom(tc.name, tc.bps, tc.lat, tc.mtu, tc.hdr); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	l, err := netsim.Custom("", 25e9, 5e-6, 9000, 66)
	if err != nil {
		t.Fatal(err)
	}
	if l.Name == "" {
		t.Error("default name not generated")
	}
	if got := netsim.TenGbE().WithBandwidth(1e9).BandwidthBps; got != 1e9 {
		t.Errorf("WithBandwidth = %g", got)
	}
}
