package transit

import "math"

// Chaotic-system divergence acceptance (SNIPPETS §2, research question 2):
// lossy error bounds are only meaningful relative to what the application
// does with the data. For chaotic systems the natural acceptance metric is
// the divergence horizon — how many steps an ensemble advanced from the
// lossy reconstruction tracks the ensemble advanced from the original
// before the trajectories decorrelate. Tighter bounds must buy longer
// horizons; a bound whose horizon is shorter than the exchange cadence is
// unusable regardless of its ratio.

// Lorenz is the Lorenz-63 system advanced with classic RK4.
type Lorenz struct {
	Sigma, Rho, Beta float64
	Dt               float64
}

// StandardLorenz returns the canonical chaotic parameterization.
func StandardLorenz() Lorenz {
	return Lorenz{Sigma: 10, Rho: 28, Beta: 8.0 / 3.0, Dt: 0.01}
}

func (l Lorenz) deriv(x, y, z float64) (dx, dy, dz float64) {
	return l.Sigma * (y - x), x*(l.Rho-z) - y, x*y - l.Beta*z
}

// Step advances one state by one RK4 step.
func (l Lorenz) Step(x, y, z float64) (float64, float64, float64) {
	k1x, k1y, k1z := l.deriv(x, y, z)
	k2x, k2y, k2z := l.deriv(x+l.Dt/2*k1x, y+l.Dt/2*k1y, z+l.Dt/2*k1z)
	k3x, k3y, k3z := l.deriv(x+l.Dt/2*k2x, y+l.Dt/2*k2y, z+l.Dt/2*k2z)
	k4x, k4y, k4z := l.deriv(x+l.Dt*k3x, y+l.Dt*k3y, z+l.Dt*k3z)
	x += l.Dt / 6 * (k1x + 2*k2x + 2*k3x + k4x)
	y += l.Dt / 6 * (k1y + 2*k2y + 2*k3y + k4y)
	z += l.Dt / 6 * (k1z + 2*k2z + 2*k3z + k4z)
	return x, y, z
}

// StepEnsemble advances a packed [x0 y0 z0 x1 y1 z1 ...] ensemble in place.
func (l Lorenz) StepEnsemble(s []float64) {
	for i := 0; i+2 < len(s); i += 3 {
		s[i], s[i+1], s[i+2] = l.Step(s[i], s[i+1], s[i+2])
	}
}

// LorenzEnsemble seeds n trajectories near the attractor, packed as
// [x y z] triplets in a float32 field ready for a transit Payload. The
// xorshift stream makes it deterministic per seed.
func LorenzEnsemble(n int, seed int64) []float32 {
	rng := uint64(seed)
	if rng == 0 {
		rng = 0x9E3779B97F4A7C15
	}
	next := func() float64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return float64(rng>>11) / (1 << 53)
	}
	out := make([]float32, 3*n)
	l := StandardLorenz()
	for i := 0; i < n; i++ {
		x, y, z := 1+2*(next()-0.5), 1+2*(next()-0.5), 20+4*(next()-0.5)
		// Burn in onto the attractor so the ensemble is in-regime.
		for s := 0; s < 200; s++ {
			x, y, z = l.Step(x, y, z)
		}
		out[3*i], out[3*i+1], out[3*i+2] = float32(x), float32(y), float32(z)
	}
	return out
}

// lorenzScale is the characteristic attractor diameter used to normalize
// ensemble separation (|x|,|y| ≲ 20, z ∈ [0, ~48]).
const lorenzScale = 40.0

// DivergenceHorizon advances two state vectors with step and returns the
// first step at which their normalized RMS separation exceeds tol, or
// maxSteps if they track for the whole run. a and b are copied, not
// mutated. scale converts absolute separation to a relative one (the
// system's characteristic magnitude).
func DivergenceHorizon(a, b []float64, step func([]float64), scale, tol float64, maxSteps int) int {
	if len(a) != len(b) || len(a) == 0 || scale <= 0 {
		return 0
	}
	sa := append([]float64(nil), a...)
	sb := append([]float64(nil), b...)
	for s := 1; s <= maxSteps; s++ {
		step(sa)
		step(sb)
		var sum float64
		for i := range sa {
			d := (sa[i] - sb[i]) / scale
			sum += d * d
		}
		if math.Sqrt(sum/float64(len(sa))) > tol {
			return s
		}
	}
	return maxSteps
}

// LorenzDivergenceHorizon runs DivergenceHorizon on two packed float32
// Lorenz ensembles (original vs. lossy reconstruction) with the standard
// parameterization.
func LorenzDivergenceHorizon(orig, recon []float32, tol float64, maxSteps int) int {
	l := StandardLorenz()
	return DivergenceHorizon(widen(orig), widen(recon), l.StepEnsemble, lorenzScale, tol, maxSteps)
}

// Logistic is the logistic map x ← r·x·(1−x), chaotic at r = 4.
type Logistic struct{ R float64 }

// StepEnsemble advances every element in place.
func (m Logistic) StepEnsemble(s []float64) {
	for i, x := range s {
		s[i] = m.R * x * (1 - x)
	}
}

// LogisticEnsemble seeds n map states in (0, 1), deterministic per seed.
func LogisticEnsemble(n int, seed int64) []float32 {
	rng := uint64(seed)
	if rng == 0 {
		rng = 0x1234567890ABCDEF
	}
	out := make([]float32, n)
	for i := range out {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		u := float64(rng>>11) / (1 << 53)
		out[i] = float32(0.01 + 0.98*u)
	}
	return out
}

// LogisticDivergenceHorizon compares two packed map ensembles at r = 4
// (unit state space, so scale is 1).
func LogisticDivergenceHorizon(orig, recon []float32, tol float64, maxSteps int) int {
	m := Logistic{R: 4}
	return DivergenceHorizon(widen(orig), widen(recon), m.StepEnsemble, 1, tol, maxSteps)
}

func widen(xs []float32) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}
