package transit

import (
	"fmt"
	"math"

	"lcpio/internal/machine"
	"lcpio/internal/netsim"
)

// Economics is the break-even answer for one codec/bound on one payload:
// below BreakEvenBps compressing the message is faster than shipping it
// raw; below EnergyBreakEvenBps it also costs less energy. Symmetric to
// the break-even churn (dedup) and break-even loss probability (parity)
// reports in internal/ckpt.
type Economics struct {
	Codec string
	RelEB float64
	// Link carries the framing and latency the answer assumes; its
	// BandwidthBps is the swept axis, not part of the answer.
	Link netsim.Link

	RawBytes        int64
	CompressedBytes int64
	Ratio           float64

	// Modeled at the channel's tuned clocks; bandwidth-independent.
	CompressSeconds   float64
	DecompressSeconds float64
	CompressJoules    float64
	DecompressJoules  float64

	// BreakEvenBps is the closed-form time-parity bandwidth: compressing
	// wins on links slower than this. 0 means the payload did not shrink
	// (compression never wins); +Inf means compute is free at this model's
	// resolution (compression always wins).
	BreakEvenBps float64
	// EnergyBreakEvenBps is the energy-parity bandwidth, found by bisection
	// (the transit energy model overlaps CPU and wire non-linearly, so
	// there is no closed form). Same 0/+Inf conventions.
	EnergyBreakEvenBps float64
}

// BreakEvenBps solves time parity in closed form. Both sides ship one
// message over the same link, so the latencies cancel and each transfer
// time is linear in 1/B:
//
//	t_comp(B) = computeSeconds + 8·WireBytes(comp)/B
//	t_raw(B)  = 8·WireBytes(raw)/B
//
// which cross at B* = 8·(WireBytes(raw) − WireBytes(comp))/computeSeconds.
// WireBytes includes per-packet headers, so MTU and framing shift the
// answer — that is why the sweep in SweepBreakEven checks the same number
// without using this formula.
func BreakEvenBps(link netsim.Link, rawBytes, compressedBytes int64, computeSeconds float64) float64 {
	dWire := link.WireBytes(rawBytes) - link.WireBytes(compressedBytes)
	if dWire <= 0 {
		return 0
	}
	if computeSeconds <= 0 {
		return math.Inf(1)
	}
	return 8 * float64(dWire) / computeSeconds
}

// BreakEven runs the real codec on the payload once and prices both sides
// of the trade, emitting the per-codec/bound break-even bandwidths.
func (c *Channel) BreakEven(p Payload) (Economics, error) {
	if c.lanes == nil {
		return Economics{}, fmt.Errorf("transit: break-even needs a lossy codec, channel is %s", CodecRaw)
	}
	m, err := c.Send(p)
	if err != nil {
		return Economics{}, err
	}
	e := Economics{
		Codec:             c.cfg.Codec,
		RelEB:             c.cfg.RelEB,
		Link:              c.cfg.Link,
		RawBytes:          m.RawBytes,
		CompressedBytes:   m.WireBytes,
		Ratio:             m.Ratio,
		CompressSeconds:   m.CompressSeconds,
		DecompressSeconds: m.DecompressSeconds,
		CompressJoules:    m.CompressJoules,
		DecompressJoules:  m.DecompressJoules,
	}
	e.BreakEvenBps = BreakEvenBps(e.Link, e.RawBytes, e.CompressedBytes,
		e.CompressSeconds+e.DecompressSeconds)
	e.EnergyBreakEvenBps = c.energyBreakEven(e)
	return e, nil
}

// CompressedSeconds is the end-to-end time of the compressed path on the
// link clocked at bps.
func (e Economics) CompressedSeconds(bps float64) float64 {
	return e.CompressSeconds + e.Link.WithBandwidth(bps).MessageTime(e.CompressedBytes) +
		e.DecompressSeconds
}

// RawSeconds is the end-to-end time of the raw path at bps.
func (e Economics) RawSeconds(bps float64) float64 {
	return e.Link.WithBandwidth(bps).MessageTime(e.RawBytes)
}

// TimeSavedSeconds is positive where compressing wins at bps.
func (e Economics) TimeSavedSeconds(bps float64) float64 {
	return e.RawSeconds(bps) - e.CompressedSeconds(bps)
}

// SweepBreakEven finds the time-parity bandwidth without the closed form:
// an exhaustive geometric sweep over [loBps, hiBps] brackets the sign
// change of TimeSavedSeconds, then bisection refines the bracket. It must
// agree with BreakEvenBps within a fraction of a percent — the acceptance
// check for the closed form. Returns 0 if compression loses everywhere on
// the range and +Inf if it wins everywhere.
func (e Economics) SweepBreakEven(loBps, hiBps float64, steps int) float64 {
	if steps < 2 {
		steps = 2
	}
	if !(loBps > 0) || !(hiBps > loBps) {
		return 0
	}
	ratio := math.Pow(hiBps/loBps, 1/float64(steps-1))
	if e.TimeSavedSeconds(loBps) <= 0 {
		return 0 // losing even on the slowest link in range
	}
	prevB := loBps
	for i := 1; i < steps; i++ {
		b := loBps * math.Pow(ratio, float64(i))
		if e.TimeSavedSeconds(b) <= 0 {
			// Bracketed: refine by bisection.
			lo, hi := prevB, b
			for iter := 0; iter < 60; iter++ {
				mid := math.Sqrt(lo * hi)
				if e.TimeSavedSeconds(mid) > 0 {
					lo = mid
				} else {
					hi = mid
				}
			}
			return math.Sqrt(lo * hi)
		}
		prevB = b
	}
	return math.Inf(1) // still winning on the fastest link in range
}

// SweepPoint is one row of a bandwidth sweep table.
type SweepPoint struct {
	BandwidthBps      float64
	CompressedSeconds float64
	RawSeconds        float64
	GoodputBps        float64 // raw payload bits over the compressed path time
	RawGoodputBps     float64
	CompressionWins   bool
}

// Sweep tabulates both paths at the given bandwidths — the CLI/bench view
// of the trade.
func (e Economics) Sweep(bandwidths []float64) []SweepPoint {
	pts := make([]SweepPoint, 0, len(bandwidths))
	for _, b := range bandwidths {
		cs := e.CompressedSeconds(b)
		rs := e.RawSeconds(b)
		pt := SweepPoint{
			BandwidthBps:      b,
			CompressedSeconds: cs,
			RawSeconds:        rs,
			CompressionWins:   cs < rs,
		}
		if cs > 0 {
			pt.GoodputBps = float64(e.RawBytes) * 8 / cs
		}
		if rs > 0 {
			pt.RawGoodputBps = float64(e.RawBytes) * 8 / rs
		}
		pts = append(pts, pt)
	}
	return pts
}

// energyBreakEven bisects the energy-parity bandwidth. The wire energy is
// priced by the transit machine model (CPU overlapping the link under a
// smooth maximum), so the difference is monotone in B but has no closed
// form.
func (c *Channel) energyBreakEven(e Economics) float64 {
	const loBps, hiBps = 1e3, 1e16
	computeJ := e.CompressJoules + e.DecompressJoules
	// saved(B) > 0 where compression spends less energy than raw.
	saved := func(bps float64) float64 {
		link := c.cfg.Link.WithBandwidth(bps)
		rawJ := c.node.RunClean(machine.LinkTransitWorkload(e.RawBytes, link, c.cfg.Chip), c.fIO).Joules
		compJ := c.node.RunClean(machine.LinkTransitWorkload(e.CompressedBytes, link, c.cfg.Chip), c.fIO).Joules
		return rawJ - (computeJ + compJ)
	}
	if saved(loBps) <= 0 {
		return 0
	}
	if saved(hiBps) > 0 {
		return math.Inf(1)
	}
	lo, hi := loBps, hiBps
	for i := 0; i < 80; i++ {
		mid := math.Sqrt(lo * hi)
		if saved(mid) > 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return math.Sqrt(lo * hi)
}
