package transit

import (
	"testing"
)

func TestLorenzStepStaysOnAttractor(t *testing.T) {
	l := StandardLorenz()
	x, y, z := 1.0, 1.0, 20.0
	for i := 0; i < 10000; i++ {
		x, y, z = l.Step(x, y, z)
		if x < -30 || x > 30 || y < -40 || y > 40 || z < -5 || z > 60 {
			t.Fatalf("step %d left the attractor: (%g, %g, %g)", i, x, y, z)
		}
	}
}

func TestDivergenceHorizonIdenticalStatesNeverDiverge(t *testing.T) {
	ens := LorenzEnsemble(32, 1)
	if h := LorenzDivergenceHorizon(ens, ens, 1e-3, 500); h != 500 {
		t.Errorf("identical ensembles diverged at step %d", h)
	}
}

func TestDivergenceHorizonDeterministic(t *testing.T) {
	a := LorenzEnsemble(16, 7)
	b := LorenzEnsemble(16, 8)
	h1 := LorenzDivergenceHorizon(a, b, 1e-3, 1000)
	h2 := LorenzDivergenceHorizon(a, b, 1e-3, 1000)
	if h1 != h2 {
		t.Errorf("horizon not deterministic: %d vs %d", h1, h2)
	}
	if h1 <= 0 || h1 >= 1000 {
		t.Errorf("distinct ensembles: horizon %d outside (0, 1000)", h1)
	}
}

// TestLossyRoundTripDivergenceAcceptance is the chaotic-system acceptance
// gate of SNIPPETS §2: advance the Lorenz ensemble from the original state
// and from the lossy round-tripped state, and require (a) a tighter bound
// to buy a horizon at least as long, and (b) the tight bound's horizon to
// clear a usability floor.
func TestLossyRoundTripDivergenceAcceptance(t *testing.T) {
	orig := LorenzEnsemble(256, 42)
	p := Payload{Data: orig, Dims: []int{256, 3}}
	const maxSteps = 4000
	horizon := func(relEB float64) int {
		c := newTestChannel(t, "sz", relEB, 1)
		m, err := c.Send(p)
		if err != nil {
			t.Fatalf("relEB %g: %v", relEB, err)
		}
		return LorenzDivergenceHorizon(orig, m.Data, 0.05, maxSteps)
	}
	loose := horizon(1e-2)
	tight := horizon(1e-5)
	if tight < loose {
		t.Errorf("tighter bound shortened the horizon: 1e-5 -> %d steps, 1e-2 -> %d steps", tight, loose)
	}
	if tight < 200 {
		t.Errorf("1e-5 horizon %d steps below the 200-step usability floor", tight)
	}
	if loose <= 0 {
		t.Errorf("loose-bound horizon %d; even 1e-2 should track briefly", loose)
	}
}

func TestLogisticDivergenceTighterBoundTracksLonger(t *testing.T) {
	orig := LogisticEnsemble(512, 3)
	p := Payload{Data: orig, Dims: []int{512}}
	horizon := func(relEB float64) int {
		c := newTestChannel(t, "zfp", relEB, 1)
		m, err := c.Send(p)
		if err != nil {
			t.Fatalf("relEB %g: %v", relEB, err)
		}
		return LogisticDivergenceHorizon(orig, m.Data, 0.05, 200)
	}
	loose := horizon(1e-2)
	tight := horizon(1e-6)
	if tight <= loose {
		t.Errorf("logistic horizons not ordered: 1e-6 -> %d, 1e-2 -> %d", tight, loose)
	}
}

func TestDivergenceHorizonGuards(t *testing.T) {
	if h := DivergenceHorizon([]float64{1}, []float64{1, 2}, func([]float64) {}, 1, 0.1, 10); h != 0 {
		t.Errorf("length mismatch: %d", h)
	}
	if h := DivergenceHorizon(nil, nil, func([]float64) {}, 1, 0.1, 10); h != 0 {
		t.Errorf("empty: %d", h)
	}
	if h := DivergenceHorizon([]float64{1}, []float64{1}, func([]float64) {}, 0, 0.1, 10); h != 0 {
		t.Errorf("zero scale: %d", h)
	}
}
