package transit

import (
	"math"
	"testing"

	"lcpio/internal/dvfs"
	"lcpio/internal/fpdata"
	"lcpio/internal/machine"
	"lcpio/internal/netsim"
	"lcpio/internal/obs"
	"lcpio/internal/phases"
)

// testPayload generates a smooth Isabel-like field small enough for fast
// round trips.
func testPayload(t testing.TB, seed int64) Payload {
	t.Helper()
	spec, err := fpdata.Lookup("Hurricane-ISABEL", "P")
	if err != nil {
		t.Fatal(err)
	}
	f := fpdata.Generate(spec, spec.ScaleFor(48_000), seed)
	return Payload{Data: f.Data, Dims: f.Dims}
}

func testNode() (*machine.Node, *dvfs.Chip) {
	chip := dvfs.Broadwell()
	return machine.NewNode(chip, 1), chip
}

func newTestChannel(t testing.TB, codec string, relEB float64, workers int) *Channel {
	t.Helper()
	c, err := New(Config{Link: netsim.TenGbE(), Codec: codec, RelEB: relEB, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRawChannelIsIdentityWithUnitRatio(t *testing.T) {
	c := newTestChannel(t, CodecRaw, 0, 1)
	p := testPayload(t, 1)
	m, err := c.Send(p)
	if err != nil {
		t.Fatal(err)
	}
	if m.WireBytes != m.RawBytes || m.Ratio != 1 {
		t.Fatalf("raw channel: wire %d raw %d ratio %g", m.WireBytes, m.RawBytes, m.Ratio)
	}
	if m.CompressSeconds != 0 || m.DecompressSeconds != 0 {
		t.Fatalf("raw channel modeled codec time: %g/%g", m.CompressSeconds, m.DecompressSeconds)
	}
	if m.ULP.ExactShare != 1 || m.ULP.Max != 0 {
		t.Fatalf("raw channel not exact: %+v", m.ULP)
	}
	for i := range p.Data {
		if m.Data[i] != p.Data[i] {
			t.Fatalf("raw channel mutated element %d", i)
		}
	}
}

func TestLossyChannelShrinksAndBoundsError(t *testing.T) {
	p := testPayload(t, 2)
	for _, codec := range []string{"sz", "zfp"} {
		c := newTestChannel(t, codec, 1e-3, 2)
		m, err := c.Send(p)
		if err != nil {
			t.Fatalf("%s: %v", codec, err)
		}
		if m.Ratio <= 1.5 {
			t.Errorf("%s: ratio %g too low for a smooth field", codec, m.Ratio)
		}
		if m.CompressSeconds <= 0 || m.DecompressSeconds <= 0 || m.WireSeconds <= 0 {
			t.Errorf("%s: non-positive modeled seconds %+v", codec, m)
		}
		if m.Joules() <= 0 {
			t.Errorf("%s: non-positive joules", codec)
		}
		// The codec honors its absolute bound; check it end to end.
		lo, hi := fieldRange(p.Data)
		bound := 1e-3 * float64(hi-lo) * 1.000001
		for i := range p.Data {
			if d := math.Abs(float64(m.Data[i]) - float64(p.Data[i])); d > bound {
				t.Fatalf("%s: element %d error %g exceeds bound %g", codec, i, d, bound)
			}
		}
	}
}

func fieldRange(xs []float32) (lo, hi float32) {
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

func TestBatchTimelineSerializesLink(t *testing.T) {
	c := newTestChannel(t, "sz", 1e-3, 4)
	p := testPayload(t, 3)
	// Same payload four times: with 4 compress lanes all chunks finish
	// compression together, so chunks 2..4 must queue behind the link.
	b, err := c.SendAll([]Payload{p, p, p, p})
	if err != nil {
		t.Fatal(err)
	}
	if b.QueueWaitSeconds <= 0 {
		t.Errorf("no queue wait on a serialized link: %+v", b)
	}
	if b.Messages[0].QueueWaitSeconds != 0 {
		t.Errorf("first chunk queued %g s behind an idle link", b.Messages[0].QueueWaitSeconds)
	}
	// Makespan is at least compress + all wire legs + last decompress.
	var wire float64
	for _, m := range b.Messages {
		wire += m.WireSeconds
	}
	lower := b.Messages[0].CompressSeconds + wire + b.Messages[3].DecompressSeconds
	if b.SimSeconds < lower*0.999 {
		t.Errorf("makespan %g below serialized lower bound %g", b.SimSeconds, lower)
	}
	if b.RawSimSeconds <= 0 || b.GoodputBps() <= 0 {
		t.Errorf("counterfactual missing: %+v", b)
	}
}

func TestBatchObsSpansCarryExactEnergy(t *testing.T) {
	old := obs.Active()
	reg := obs.NewRegistry()
	obs.Use(reg)
	defer obs.Use(old)

	c := newTestChannel(t, "zfp", 1e-4, 2)
	p := testPayload(t, 4)
	b, err := c.SendAll([]Payload{p, p})
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	// transit.batch is the only root; its rolled-up joules are the batch's
	// exact attributed energy.
	if got := snap.RootJoules(); math.Abs(got-b.Joules)/b.Joules > 1e-9 {
		t.Errorf("root span joules %g vs batch %g", got, b.Joules)
	}
	var spanJ float64
	for _, name := range []string{"transit.compress", "transit.wire", "transit.decompress"} {
		st, ok := snap.SpanTotals[name]
		if !ok || st.Count != 2 {
			t.Fatalf("missing per-message %s spans: %+v", name, snap.SpanTotals)
		}
		spanJ += st.Joules
	}
	if rel := math.Abs(spanJ-b.Joules) / b.Joules; rel > 1e-9 {
		t.Errorf("span joules %g vs batch %g (rel %g)", spanJ, b.Joules, rel)
	}
}

func TestCampaignEnergyReconcilesWithBatch(t *testing.T) {
	c := newTestChannel(t, "sz", 1e-3, 1)
	p := testPayload(t, 5)
	b, err := c.SendAll([]Payload{p})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := c.Campaign(b, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The campaign at the channel's rule prices the same workloads at the
	// same clocks, so its energy must reconcile with the batch total.
	node, chip := testNode()
	tot, err := plan.ApplyRule(phases.PaperRule(), chip).Execute(node)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(tot.Joules-b.Joules) / b.Joules; rel > 0.01 {
		t.Errorf("campaign %g J vs batch %g J: rel error %g >= 1%%", tot.Joules, b.Joules, rel)
	}
}

// TestCampaignEnergyReconcilesWithObsSpans is the ISSUE acceptance check:
// executing the in-transit campaign under a live obs registry attributes
// every phase's joules to spans, and the root rollup reconciles with the
// plan totals within 1%.
func TestCampaignEnergyReconcilesWithObsSpans(t *testing.T) {
	c := newTestChannel(t, "zfp", 1e-3, 1)
	p := testPayload(t, 6)
	b, err := c.SendAll([]Payload{p})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := c.Campaign(b, 3, 0.25)
	if err != nil {
		t.Fatal(err)
	}

	old := obs.Active()
	reg := obs.NewRegistry()
	obs.Use(reg)
	defer obs.Use(old)

	node, chip := testNode()
	tot, err := plan.ApplyRule(phases.PaperRule(), chip).Execute(node)
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	rootJ := snap.RootJoules()
	if tot.Joules <= 0 {
		t.Fatal("campaign produced no energy")
	}
	if rel := math.Abs(rootJ-tot.Joules) / tot.Joules; rel > 0.01 {
		t.Errorf("obs root %g J vs campaign %g J: rel error %g >= 1%%", rootJ, tot.Joules, rel)
	}
}

func TestChannelGuards(t *testing.T) {
	if _, err := New(Config{Codec: "sz"}); err == nil {
		t.Error("zero-bandwidth link accepted")
	}
	if _, err := New(Config{Link: netsim.TenGbE(), Codec: "nope"}); err == nil {
		t.Error("unknown codec accepted")
	}
	if _, err := New(Config{Link: netsim.TenGbE(), Codec: "sz", RelEB: 1.5}); err == nil {
		t.Error("relEB >= 1 accepted")
	}
	c := newTestChannel(t, "sz", 1e-3, 1)
	if _, err := c.SendAll(nil); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := c.Send(Payload{Data: []float32{1, 2}, Dims: []int{3}}); err == nil {
		t.Error("dims/data mismatch accepted")
	}
	raw := newTestChannel(t, CodecRaw, 0, 1)
	if _, err := raw.BreakEven(testPayload(t, 7)); err == nil {
		t.Error("break-even on a raw channel accepted")
	}
	if _, err := raw.Campaign(Batch{}, 1, 0); err == nil {
		t.Error("campaign on a raw channel accepted")
	}
}

func TestWorkerCountIsByteInvariant(t *testing.T) {
	p := testPayload(t, 8)
	var wire []int64
	for _, w := range []int{1, 4} {
		c := newTestChannel(t, "sz", 1e-3, w)
		m, err := c.Send(p)
		if err != nil {
			t.Fatal(err)
		}
		wire = append(wire, m.WireBytes)
	}
	if wire[0] != wire[1] {
		t.Errorf("wire bytes differ across workers: %v", wire)
	}
}
