package transit_test

import (
	"encoding/json"
	"math"
	"net"
	"os"
	"testing"
	"time"

	"lcpio/internal/ckpt"
	"lcpio/internal/fpdata"
	"lcpio/internal/netsim"
	"lcpio/internal/nfs"
	"lcpio/internal/svc"
	"lcpio/internal/transit"
)

// benchPayload mirrors the in-package testPayload helper; this file lives
// in an external test package so its svc import (svc -> advisor ->
// transit) does not close an import cycle with the package under test.
func benchPayload(t testing.TB, seed int64) transit.Payload {
	t.Helper()
	spec, err := fpdata.Lookup("Hurricane-ISABEL", "P")
	if err != nil {
		t.Fatal(err)
	}
	f := fpdata.Generate(spec, spec.ScaleFor(48_000), seed)
	return transit.Payload{Data: f.Data, Dims: f.Dims}
}

func benchChannel(t testing.TB, codec string, relEB float64, workers int) *transit.Channel {
	t.Helper()
	c, err := transit.New(transit.Config{Link: netsim.TenGbE(), Codec: codec, RelEB: relEB, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

type transitGoodputPoint struct {
	Codec           string  `json:"codec"`
	RelEB           float64 `json:"releb"`
	BandwidthBps    float64 `json:"bandwidth_bps"`
	GoodputBps      float64 `json:"goodput_bps"`
	RawGoodputBps   float64 `json:"raw_goodput_bps"`
	CompressionWins bool    `json:"compression_wins"`
}

type transitBreakEvenPoint struct {
	Codec              string  `json:"codec"`
	RelEB              float64 `json:"releb"`
	Ratio              float64 `json:"ratio"`
	CompressSeconds    float64 `json:"compress_seconds"`
	DecompressSeconds  float64 `json:"decompress_seconds"`
	BreakEvenBps       float64 `json:"break_even_bps"`
	EnergyBreakEvenBps float64 `json:"energy_break_even_bps"`
}

// benchWireSet builds a small deterministic checkpoint set for the wire
// codec overhead probe.
func benchWireSet(name string) ckpt.Set {
	set := ckpt.Set{
		Name: name, Meta: "transit-bench", Codec: "sz", Ranks: 4,
		Fields: []ckpt.Field{{Name: "p", Dims: []int{32, 48}, ErrorBound: 1e-3}},
	}
	f := &set.Fields[0]
	for r := 0; r < set.Ranks; r++ {
		data := make([]float32, 32*48)
		for i := range data {
			data[i] = float32(math.Sin(float64(i)/40 + float64(r)))
		}
		f.Data = append(f.Data, data)
	}
	return set
}

// benchDump runs one dump against a fresh daemon on the saturating bench
// mount and reports the daemon accounting plus wall-clock cost.
func benchDump(t *testing.T, opts svc.DumpOptions) (svc.Result, float64) {
	t.Helper()
	mount := nfs.Mount{Link: netsim.Link{Name: "bench", BandwidthBps: 20e6, LatencySec: 5e-5, MTU: 9000}}
	srv := svc.NewServer(svc.Config{Mount: mount})
	if err := srv.AddTenant(svc.TenantConfig{Name: "bench"}); err != nil {
		t.Fatal(err)
	}
	cEnd, sEnd := net.Pipe()
	done := make(chan struct{})
	go func() { defer close(done); _ = srv.ServeConn(sEnd) }()
	defer func() { cEnd.Close(); sEnd.Close(); <-done }()
	t0 := time.Now()
	res, err := svc.NewClient(cEnd).Dump("bench", benchWireSet("probe"), opts)
	if err != nil {
		t.Fatal(err)
	}
	return res, time.Since(t0).Seconds()
}

// TestEmitTransitBenchJSON is the scripts/bench.sh hook: with
// LCPIO_BENCH_TRANSIT_OUT set it writes BENCH_transit.json — compress-vs-raw
// goodput at three link bandwidths, break-even bandwidth per codec/bound,
// and the wire-codec overhead of a dump on the svc bench mount. Without the
// env var it is a no-op skip.
func TestEmitTransitBenchJSON(t *testing.T) {
	out := os.Getenv("LCPIO_BENCH_TRANSIT_OUT")
	if out == "" {
		t.Skip("LCPIO_BENCH_TRANSIT_OUT not set")
	}
	p := benchPayload(t, 99)
	bandwidths := []float64{100e6, 1e9, 10e9}
	var goodput []transitGoodputPoint
	var breakEven []transitBreakEvenPoint
	for _, codec := range []string{"sz", "zfp"} {
		for _, relEB := range []float64{1e-3, 1e-5} {
			c := benchChannel(t, codec, relEB, 2)
			e, err := c.BreakEven(p)
			if err != nil {
				t.Fatal(err)
			}
			if e.BreakEvenBps <= 0 || math.IsInf(e.BreakEvenBps, 0) {
				t.Fatalf("%s/%g: degenerate break-even %g", codec, relEB, e.BreakEvenBps)
			}
			breakEven = append(breakEven, transitBreakEvenPoint{
				Codec: codec, RelEB: relEB, Ratio: e.Ratio,
				CompressSeconds: e.CompressSeconds, DecompressSeconds: e.DecompressSeconds,
				BreakEvenBps: e.BreakEvenBps, EnergyBreakEvenBps: e.EnergyBreakEvenBps,
			})
			for _, pt := range e.Sweep(bandwidths) {
				goodput = append(goodput, transitGoodputPoint{
					Codec: codec, RelEB: relEB, BandwidthBps: pt.BandwidthBps,
					GoodputBps: pt.GoodputBps, RawGoodputBps: pt.RawGoodputBps,
					CompressionWins: pt.CompressionWins,
				})
			}
		}
	}

	plain, plainWall := benchDump(t, svc.DumpOptions{Workers: 2})
	wirez, wirezWall := benchDump(t, svc.DumpOptions{Workers: 2, WireCodec: "sz"})
	if wirez.WireVerifiedChunks == 0 || wirez.WireSavedSeconds <= 0 {
		t.Fatalf("wire-codec dump missing wire accounting: %+v", wirez)
	}
	if plain.PayloadBytes != wirez.PayloadBytes {
		t.Fatalf("wire codec changed payload bytes: %d vs %d", wirez.PayloadBytes, plain.PayloadBytes)
	}

	doc := map[string]any{
		"payload_bytes": int64(len(p.Data)) * 4,
		"goodput":       goodput,
		"break_even":    breakEven,
		"wire_codec_overhead": map[string]any{
			"plain_sim_seconds":    plain.SimSeconds,
			"wirez_sim_seconds":    wirez.SimSeconds,
			"wire_saved_seconds":   wirez.WireSavedSeconds,
			"wire_verified_chunks": wirez.WireVerifiedChunks,
			"plain_wall_seconds":   plainWall,
			"wirez_wall_seconds":   wirezWall,
		},
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
