package stream

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

// TestDrainInOrder: items arrive at the consumer strictly in index order,
// exactly once, at every worker count.
func TestDrainInOrder(t *testing.T) {
	const n = 100
	for _, workers := range []int{1, 2, 3, 8} {
		eng := Start(n, Options{Workers: workers}, func(lane int) ProduceFunc {
			return func(idx int) ([]byte, error) {
				return []byte(fmt.Sprintf("item-%d", idx)), nil
			}
		})
		var got []int
		err := eng.Drain(func(it Item) error {
			if string(it.Blob) != fmt.Sprintf("item-%d", it.Idx) {
				t.Fatalf("workers=%d: item %d carries blob %q", workers, it.Idx, it.Blob)
			}
			got = append(got, it.Idx)
			return nil
		})
		eng.Close()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != n {
			t.Fatalf("workers=%d: consumed %d of %d", workers, len(got), n)
		}
		for i, idx := range got {
			if idx != i {
				t.Fatalf("workers=%d: position %d got index %d", workers, i, idx)
			}
		}
	}
}

// TestBackpressureWindow: no more than QueueDepth items are ever dispatched
// beyond the consumer's progress — the slot semaphore bounds the in-flight
// window even when the consumer is slow.
func TestBackpressureWindow(t *testing.T) {
	const n, depth = 64, 4
	var produced, consumed atomic.Int64
	maxAhead := int64(0)
	eng := Start(n, Options{Workers: 3, QueueDepth: depth}, func(lane int) ProduceFunc {
		return func(idx int) ([]byte, error) {
			produced.Add(1)
			return []byte{byte(idx)}, nil
		}
	})
	err := eng.Drain(func(it Item) error {
		if ahead := produced.Load() - consumed.Load(); ahead > maxAhead {
			maxAhead = ahead
		}
		consumed.Add(1)
		return nil
	})
	eng.Close()
	if err != nil {
		t.Fatal(err)
	}
	if maxAhead > depth {
		t.Fatalf("in-flight window reached %d, QueueDepth %d", maxAhead, depth)
	}
}

// TestProducerErrorSurfacesInOrder: a failing index aborts the drain with
// the consumer's wrapped error, and the engine shuts down cleanly.
func TestProducerErrorSurfacesInOrder(t *testing.T) {
	boom := errors.New("boom")
	eng := Start(32, Options{Workers: 4}, func(lane int) ProduceFunc {
		return func(idx int) ([]byte, error) {
			if idx == 7 {
				return nil, boom
			}
			return []byte{byte(idx)}, nil
		}
	})
	last := -1
	err := eng.Drain(func(it Item) error {
		if it.Err != nil {
			return fmt.Errorf("item %d: %w", it.Idx, it.Err)
		}
		last = it.Idx
		return nil
	})
	eng.Close()
	if !errors.Is(err, boom) {
		t.Fatalf("drain error = %v, want wrapped boom", err)
	}
	if !strings.Contains(err.Error(), "item 7") {
		t.Fatalf("error %q does not name the failing index", err)
	}
	if last != 6 {
		t.Fatalf("consumed through index %d before the failure, want 6", last)
	}
}

// TestConsumerErrorAborts: the consumer's own error stops the pipeline
// without consuming later items.
func TestConsumerErrorAborts(t *testing.T) {
	stop := errors.New("stop")
	eng := Start(32, Options{Workers: 2}, func(lane int) ProduceFunc {
		return func(idx int) ([]byte, error) { return []byte{byte(idx)}, nil }
	})
	seen := 0
	err := eng.Drain(func(it Item) error {
		if it.Idx == 5 {
			return stop
		}
		seen++
		return nil
	})
	eng.Close()
	if !errors.Is(err, stop) {
		t.Fatalf("drain error = %v, want stop", err)
	}
	if seen != 5 {
		t.Fatalf("consumed %d items before aborting, want 5", seen)
	}
}

// TestPerLaneProducerState: newProducer runs once per lane and its closure
// state is lane-private (the engine's contract for reusable packers).
func TestPerLaneProducerState(t *testing.T) {
	const workers = 4
	var setups atomic.Int64
	eng := Start(200, Options{Workers: workers}, func(lane int) ProduceFunc {
		setups.Add(1)
		calls := 0 // lane-private: no synchronization needed if the contract holds
		return func(idx int) ([]byte, error) {
			calls++
			return []byte{byte(lane), byte(calls)}, nil
		}
	})
	err := eng.Drain(func(it Item) error { return nil })
	eng.Close()
	if err != nil {
		t.Fatal(err)
	}
	if setups.Load() != workers {
		t.Fatalf("newProducer ran %d times, want %d", setups.Load(), workers)
	}
}

// TestNormalizedDefaults mirrors the writer's historical normalization:
// QueueDepth floor is Workers+1 so the window always exceeds the lanes.
func TestNormalizedDefaults(t *testing.T) {
	o := Options{Workers: 4}.normalized()
	if o.QueueDepth != 8 {
		t.Fatalf("QueueDepth = %d, want 2×Workers = 8", o.QueueDepth)
	}
	o = Options{Workers: 4, QueueDepth: 3}.normalized()
	if o.QueueDepth != 5 {
		t.Fatalf("QueueDepth = %d, want floor Workers+1 = 5", o.QueueDepth)
	}
	if o.ProduceStage != "compress" || o.ConsumeStage != "drain" || o.DispatchStage != "dispatch" {
		t.Fatalf("default stages = %q/%q/%q", o.ProduceStage, o.ConsumeStage, o.DispatchStage)
	}
}

// TestCloseIdempotent: Close after Drain, twice, is safe.
func TestCloseIdempotent(t *testing.T) {
	eng := Start(4, Options{Workers: 2}, func(lane int) ProduceFunc {
		return func(idx int) ([]byte, error) { return nil, nil }
	})
	if err := eng.Drain(func(Item) error { return nil }); err != nil {
		t.Fatal(err)
	}
	eng.Close()
	eng.Close()
}
