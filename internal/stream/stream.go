// Package stream is the reusable pipelined produce→consume scheduler
// extracted from the checkpoint writer: a bounded in-order slot dispatcher
// feeds parallel producer workers, and a reorder buffer drains finished
// items to a single consumer in logical order on the caller's goroutine.
//
// The shape guarantees two properties the checkpoint formats (and the
// multi-tenant service built on top) depend on:
//
//   - Determinism: items are consumed strictly in index order, so anything
//     the consumer appends to a shared medium is byte-identical at any
//     worker count or queue depth.
//   - Bounded backpressure: the dispatcher acquires a slot per item IN
//     LOGICAL ORDER before handing it to a producer, so the in-flight
//     window always covers the oldest unconsumed items and the in-order
//     consumer can never starve behind out-of-order completions.
//
// The engine is independent of what "produce" and "consume" mean: ckpt.Write
// compresses chunks and drains them to a medium; the svc client compresses
// chunks and drains them onto a session's wire framing.
package stream

import (
	"errors"
	"runtime"
	"sync"
	"time"

	"lcpio/internal/obs"
)

// Options configures one pipeline run.
type Options struct {
	// Name labels the obs pipeline trace (e.g. "ckpt.write"). Empty
	// disables tracing entirely.
	Name string
	// Workers is the number of parallel producers (0 = GOMAXPROCS).
	Workers int
	// QueueDepth bounds items dispatched but not yet consumed — the
	// pipeline's backpressure window (0 = 2×Workers, floor Workers+1).
	// Production stalls when the consumer falls this far behind.
	QueueDepth int
	// Stage names for the occupancy clocks; defaults preserve the
	// historical ckpt.write lane vocabulary.
	ProduceStage  string // default "compress"
	ConsumeStage  string // default "drain"
	DispatchStage string // default "dispatch"
	// QueueGauge, if non-empty, is an obs gauge set to the reorder
	// buffer's depth after each received item; InFlightGauge tracks the
	// buffered items' byte total after each consumed item.
	QueueGauge    string
	InFlightGauge string
}

func (o Options) normalized() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 2 * o.Workers
	}
	if o.QueueDepth <= o.Workers {
		o.QueueDepth = o.Workers + 1
	}
	if o.ProduceStage == "" {
		o.ProduceStage = "compress"
	}
	if o.ConsumeStage == "" {
		o.ConsumeStage = "drain"
	}
	if o.DispatchStage == "" {
		o.DispatchStage = "dispatch"
	}
	return o
}

// ProduceFunc produces the blob for one item index.
type ProduceFunc func(idx int) ([]byte, error)

// Item carries one produced blob to the consumer.
type Item struct {
	Idx  int
	Blob []byte
	// Err is the producer's failure for this index; the consumer sees it
	// in order and decides how to wrap it.
	Err error
	// AvailAt is real seconds since the engine started when production of
	// this item finished — the consumer's overlap-accounting input.
	AvailAt float64
}

// Engine is one running pipeline. Start it, optionally drive the consumer
// lane's clock around out-of-band work (headers, trailers), Drain it, and
// Close it (Close is idempotent and safe after a failed Drain).
type Engine struct {
	opts Options
	n    int
	pt   *obs.PipelineTrace
	wr   *obs.WorkerClock

	start   time.Time
	sem     chan struct{}
	tasks   chan int
	results chan Item
	quit    chan struct{}
	wg      sync.WaitGroup

	stopOnce sync.Once
	endOnce  sync.Once
}

// Start launches the dispatcher and Workers producer goroutines for items
// 0..n-1. newProducer is invoked once per worker lane, on that lane's
// goroutine, to build its ProduceFunc (per-lane state such as a reusable
// packer lives in the closure); a lane whose setup fails should return a
// ProduceFunc that reports the error, so it surfaces in order at the
// consumer.
func Start(n int, opts Options, newProducer func(lane int) ProduceFunc) *Engine {
	opts = opts.normalized()
	e := &Engine{
		opts:    opts,
		n:       n,
		start:   time.Now(),
		sem:     make(chan struct{}, opts.QueueDepth),
		tasks:   make(chan int),
		results: make(chan Item, opts.Workers),
		quit:    make(chan struct{}),
	}
	if opts.Name != "" {
		// Lanes 0..Workers-1 are the producers; lane Workers is the
		// in-order consumer on the caller's goroutine; lane Workers+1 is
		// the dispatcher.
		e.pt = obs.StartPipeline(opts.Name, opts.Workers+2)
		e.wr = e.pt.Worker(opts.Workers)
	}

	go func() {
		defer close(e.tasks)
		dc := e.pt.Worker(opts.Workers + 1)
		for idx := 0; idx < n; idx++ {
			dc.Run(opts.DispatchStage)
			dc.Blocked()
			select {
			case e.sem <- struct{}{}:
			case <-e.quit:
				return
			}
			dc.WaitOutput()
			select {
			case e.tasks <- idx:
			case <-e.quit:
				return
			}
		}
		dc.WaitInput()
	}()

	for w := 0; w < opts.Workers; w++ {
		e.wg.Add(1)
		wc := e.pt.Worker(w)
		go func(lane int) {
			defer e.wg.Done()
			produce := newProducer(lane)
			for idx := range e.tasks {
				wc.Run(opts.ProduceStage)
				d := Item{Idx: idx}
				d.Blob, d.Err = produce(idx)
				d.AvailAt = time.Since(e.start).Seconds()
				wc.WaitOutput()
				select {
				case e.results <- d:
				case <-e.quit:
					return
				}
				wc.WaitInput()
			}
		}(w)
	}
	return e
}

// Workers reports the normalized producer count.
func (e *Engine) Workers() int { return e.opts.Workers }

// QueueDepth reports the normalized backpressure window.
func (e *Engine) QueueDepth() int { return e.opts.QueueDepth }

// Consumer returns the consumer lane's occupancy clock (nil when tracing is
// off), so the caller can attribute out-of-band work — header and trailer
// flushes around the drain loop — to named stages on the same lane.
func (e *Engine) Consumer() *obs.WorkerClock { return e.wr }

// Drain runs the in-order consumer on the calling goroutine: every item is
// buffered until its index is next, then handed to consume exactly once, in
// index order. A consume error (including one the consumer derives from
// Item.Err) aborts the pipeline and is returned verbatim. Drain stops the
// producers before returning; Close afterwards is still required to end the
// trace.
func (e *Engine) Drain(consume func(Item) error) error {
	pending := make(map[int]Item, e.opts.QueueDepth)
	var pendingBytes int64
	nextWrite := 0
	var fatal error
	for nextWrite < e.n && fatal == nil {
		d, open := <-e.results
		if !open {
			break
		}
		pending[d.Idx] = d
		pendingBytes += int64(len(d.Blob))
		if e.opts.QueueGauge != "" {
			obs.Set(e.opts.QueueGauge, float64(len(pending)))
		}
		for fatal == nil {
			d, ok := pending[nextWrite]
			if !ok {
				break
			}
			e.wr.Run(e.opts.ConsumeStage)
			delete(pending, nextWrite)
			pendingBytes -= int64(len(d.Blob))
			if err := consume(d); err != nil {
				fatal = err
				break
			}
			if e.opts.InFlightGauge != "" {
				obs.Set(e.opts.InFlightGauge, float64(pendingBytes))
			}
			<-e.sem
			nextWrite++
		}
		e.wr.WaitInput()
	}
	e.stop()
	if fatal == nil && nextWrite < e.n {
		fatal = errors.New("stream: pipeline ended early") // defensive; unreachable
	}
	return fatal
}

// stop halts the dispatcher and producers and waits them out.
func (e *Engine) stop() {
	e.stopOnce.Do(func() { close(e.quit) })
	e.wg.Wait()
}

// Close stops the pipeline (if Drain has not already) and ends the
// occupancy trace. Idempotent.
func (e *Engine) Close() {
	e.stop()
	e.endOnce.Do(func() { e.pt.End() })
}
