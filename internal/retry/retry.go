// Package retry is the shared capped-exponential-backoff helper behind
// every transient-fault retry loop in the tree: the ckpt writer's medium
// faults, the ckpt restore path's re-reads, and the nfs pipeline's
// retransmit waits all price their simulated delays through one Policy, so
// the backoff arithmetic (and its caps) cannot drift between layers.
//
// A Policy optionally adds deterministic jitter: each delay is scaled by a
// factor drawn uniformly from [1-Jitter, 1+Jitter) using a caller-supplied
// randomness source (typically a seeded netsim.Injector), which decorrelates
// retry storms across concurrent tenants without giving up reproducible
// schedules — the same seed yields the same jittered delays.
package retry

import "math"

// Policy caps retries of a transient operation.
type Policy struct {
	// MaxAttempts bounds total tries (first attempt included).
	MaxAttempts int
	// Base is the first retry's delay in (simulated) seconds; subsequent
	// retries double it up to Max.
	Base float64
	// Max caps the exponential growth. Max == Base gives a constant delay —
	// the shape of an NFS client's fixed retransmit timeout.
	Max float64
	// Jitter is the relative spread applied by BackoffJittered: each delay
	// is multiplied by a factor uniform in [1-Jitter, 1+Jitter). Clamped to
	// [0, 1); 0 (the default) keeps delays exact.
	Jitter float64
}

// Normalized fills zero fields from defaults (which must itself be fully
// populated).
func (p Policy) Normalized(defaults Policy) Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = defaults.MaxAttempts
	}
	if p.Base <= 0 {
		p.Base = defaults.Base
	}
	if p.Max <= 0 {
		p.Max = defaults.Max
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	if p.Jitter >= 1 {
		p.Jitter = defaults.Jitter
	}
	return p
}

// Backoff returns the capped exponential delay before retry `attempt`
// (1-based: the delay after the attempt'th failure), without jitter.
func (p Policy) Backoff(attempt int) float64 {
	if attempt < 1 {
		attempt = 1
	}
	d := p.Base * math.Pow(2, float64(attempt-1))
	if d > p.Max {
		d = p.Max
	}
	return d
}

// BackoffJittered is Backoff scaled by a jitter factor drawn from rnd, a
// [0, 1) source (e.g. a seeded netsim.Injector's Uniform). A nil rnd or a
// zero Jitter returns the deterministic delay unchanged.
func (p Policy) BackoffJittered(attempt int, rnd func() float64) float64 {
	d := p.Backoff(attempt)
	if p.Jitter <= 0 || rnd == nil {
		return d
	}
	j := p.Jitter
	if j >= 1 {
		j = 0.999
	}
	return d * (1 - j + 2*j*rnd())
}

// Exhausted reports whether the policy allows no further attempt after
// `attempt` tries.
func (p Policy) Exhausted(attempt int) bool { return attempt >= p.MaxAttempts }
