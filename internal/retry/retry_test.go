package retry

import (
	"math"
	"testing"

	"lcpio/internal/netsim"
)

func TestBackoffCappedExponential(t *testing.T) {
	p := Policy{MaxAttempts: 5, Base: 5e-3, Max: 500e-3}
	want := []float64{5e-3, 10e-3, 20e-3, 40e-3, 80e-3, 160e-3, 320e-3, 500e-3, 500e-3}
	for i, w := range want {
		if got := p.Backoff(i + 1); math.Abs(got-w) > 1e-12 {
			t.Fatalf("Backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
	if got := p.Backoff(0); got != p.Base {
		t.Fatalf("Backoff(0) = %v, want base %v", got, p.Base)
	}
}

func TestConstantDelayShape(t *testing.T) {
	// Max == Base is the NFS retransmit-timeout shape: no growth.
	p := Policy{MaxAttempts: 16, Base: 20e-3, Max: 20e-3}
	for a := 1; a <= 16; a++ {
		if got := p.Backoff(a); got != 20e-3 {
			t.Fatalf("Backoff(%d) = %v, want constant 20ms", a, got)
		}
	}
}

func TestNormalized(t *testing.T) {
	d := Policy{MaxAttempts: 5, Base: 5e-3, Max: 500e-3}
	p := Policy{}.Normalized(d)
	if p != d {
		t.Fatalf("zero policy normalized to %+v, want defaults %+v", p, d)
	}
	p = Policy{MaxAttempts: 2, Jitter: 0.5}.Normalized(d)
	if p.MaxAttempts != 2 || p.Base != d.Base || p.Jitter != 0.5 {
		t.Fatalf("partial policy normalized to %+v", p)
	}
	if p := (Policy{Jitter: -1}).Normalized(d); p.Jitter != 0 {
		t.Fatalf("negative jitter normalized to %v, want 0", p.Jitter)
	}
}

func TestJitterBoundsAndDeterminism(t *testing.T) {
	p := Policy{MaxAttempts: 8, Base: 10e-3, Max: 100e-3, Jitter: 0.25}
	mk := func() func() float64 {
		inj := netsim.NewInjector(42)
		return inj.Uniform
	}
	r1, r2 := mk(), mk()
	for a := 1; a <= 8; a++ {
		base := p.Backoff(a)
		d1 := p.BackoffJittered(a, r1)
		if d1 < base*0.75 || d1 >= base*1.25 {
			t.Fatalf("attempt %d: jittered %v outside [%v, %v)", a, d1, base*0.75, base*1.25)
		}
		if d2 := p.BackoffJittered(a, r2); d2 != d1 {
			t.Fatalf("attempt %d: same seed gave %v then %v", a, d1, d2)
		}
	}
	// No source or no jitter: exact.
	if got := p.BackoffJittered(3, nil); got != p.Backoff(3) {
		t.Fatalf("nil source jittered = %v, want %v", got, p.Backoff(3))
	}
	q := p
	q.Jitter = 0
	if got := q.BackoffJittered(3, mk()); got != p.Backoff(3) {
		t.Fatalf("zero jitter = %v, want %v", got, p.Backoff(3))
	}
}

func TestExhausted(t *testing.T) {
	p := Policy{MaxAttempts: 3}
	if p.Exhausted(2) {
		t.Fatal("exhausted at 2 of 3")
	}
	if !p.Exhausted(3) {
		t.Fatal("not exhausted at 3 of 3")
	}
}
