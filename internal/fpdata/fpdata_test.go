package fpdata

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTableIRegistry(t *testing.T) {
	specs := TableI()
	if len(specs) != 3 {
		t.Fatalf("Table I has %d datasets, want 3", len(specs))
	}
	wantDims := map[string][]int{
		"CESM-ATM": {26, 1800, 3600},
		"HACC":     {1, 280_953_867},
		"NYX":      {512, 512, 512},
	}
	for _, s := range specs {
		want, ok := wantDims[s.Dataset]
		if !ok {
			t.Fatalf("unexpected dataset %q", s.Dataset)
		}
		if len(s.Dims) != len(want) {
			t.Fatalf("%s dims %v", s.Dataset, s.Dims)
		}
		for i := range want {
			if s.Dims[i] != want[i] {
				t.Fatalf("%s dims %v, want %v", s.Dataset, s.Dims, want)
			}
		}
		if s.PaperBytes <= 0 {
			t.Fatalf("%s missing PaperBytes", s.Dataset)
		}
	}
}

func TestIsabelFields(t *testing.T) {
	fields := IsabelFields()
	if len(fields) != 6 {
		t.Fatalf("ISABEL has %d fields, want 6", len(fields))
	}
	names := map[string]bool{}
	for _, s := range fields {
		names[s.Field] = true
		if s.Dims[0] != 100 || s.Dims[1] != 500 || s.Dims[2] != 500 {
			t.Fatalf("field %s dims %v", s.Field, s.Dims)
		}
		if s.Kind != KindWeather {
			t.Fatalf("field %s kind %v", s.Field, s.Kind)
		}
	}
	for _, want := range []string{"PRECIP", "P", "TC", "U", "V", "W"} {
		if !names[want] {
			t.Fatalf("missing field %s", want)
		}
	}
}

func TestLookup(t *testing.T) {
	s, err := Lookup("NYX", "")
	if err != nil || s.Dataset != "NYX" {
		t.Fatalf("Lookup NYX: %v %v", s, err)
	}
	s, err = Lookup("Hurricane-ISABEL", "TC")
	if err != nil || s.Field != "TC" {
		t.Fatalf("Lookup ISABEL TC: %v %v", s, err)
	}
	if _, err := Lookup("NOPE", ""); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec, _ := Lookup("NYX", "")
	a := Generate(spec, 32, 42)
	b := Generate(spec, 32, 42)
	if len(a.Data) != len(b.Data) {
		t.Fatal("length mismatch")
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("non-deterministic at %d: %v vs %v", i, a.Data[i], b.Data[i])
		}
	}
	c := Generate(spec, 32, 43)
	same := true
	for i := range a.Data {
		if a.Data[i] != c.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical fields")
	}
}

func TestScaledDims(t *testing.T) {
	got := scaledDims([]int{512, 512, 512}, 8)
	for _, d := range got {
		if d != 64 {
			t.Fatalf("scaledDims: %v", got)
		}
	}
	// Flooring at 1 and minimum fastest-axis extent.
	got = scaledDims([]int{26, 1800, 3600}, 1000)
	if got[0] != 1 || got[2] < 16 {
		t.Fatalf("scaledDims extreme: %v", got)
	}
	// scale<1 treated as 1.
	got = scaledDims([]int{10, 10}, 0)
	if got[0] != 10 || got[1] != 10 {
		t.Fatalf("scale 0: %v", got)
	}
}

func TestGenerateAllKindsFinite(t *testing.T) {
	specs := append(TableI(), IsabelFields()[0], IsabelFields()[3])
	for _, spec := range specs {
		f := Generate(spec, 64, 7)
		if f.NumElements() == 0 {
			t.Fatalf("%s: empty field", spec.Dataset)
		}
		for i, v := range f.Data {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				t.Fatalf("%s: non-finite value at %d: %v", spec.Dataset, i, v)
			}
		}
		lo, hi := f.Range()
		if !(hi > lo) {
			t.Fatalf("%s: degenerate range [%v,%v]", spec.Dataset, lo, hi)
		}
	}
}

// Smoothness property: generated grid fields must have much smaller
// first-difference variance than value variance — that spatial correlation
// is precisely what the paper's compressors exploit.
func TestGeneratedFieldsAreSmooth(t *testing.T) {
	for _, name := range []string{"CESM-ATM", "NYX"} {
		spec, _ := Lookup(name, "")
		f := Generate(spec, 16, 3)
		w := f.Dims[len(f.Dims)-1]
		var valVar, diffVar float64
		var mean float64
		for _, v := range f.Data {
			mean += float64(v)
		}
		mean /= float64(len(f.Data))
		nd := 0
		for i, v := range f.Data {
			valVar += (float64(v) - mean) * (float64(v) - mean)
			if i%w != 0 {
				d := float64(f.Data[i]) - float64(f.Data[i-1])
				diffVar += d * d
				nd++
			}
		}
		valVar /= float64(len(f.Data))
		diffVar /= float64(nd)
		if diffVar > valVar/4 {
			t.Errorf("%s: field not smooth: diffVar=%g valVar=%g", name, diffVar, valVar)
		}
	}
}

// HACC particle data must be noisy (hard to compress) relative to grid data.
func TestParticleDataIsNoisy(t *testing.T) {
	spec, _ := Lookup("HACC", "")
	f := Generate(spec, 10000, 3)
	var diffVar, valVar, mean float64
	for _, v := range f.Data {
		mean += float64(v)
	}
	mean /= float64(len(f.Data))
	for i, v := range f.Data {
		valVar += (float64(v) - mean) * (float64(v) - mean)
		if i > 0 {
			d := float64(f.Data[i]) - float64(f.Data[i-1])
			diffVar += d * d
		}
	}
	valVar /= float64(len(f.Data))
	diffVar /= float64(len(f.Data) - 1)
	if diffVar < valVar/20 {
		t.Errorf("HACC field too smooth: diffVar=%g valVar=%g", diffVar, valVar)
	}
}

func TestFieldSizeBytes(t *testing.T) {
	spec, _ := Lookup("NYX", "")
	f := Generate(spec, 64, 1)
	if f.SizeBytes() != int64(len(f.Data))*4 {
		t.Fatalf("SizeBytes %d, elements %d", f.SizeBytes(), len(f.Data))
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindClimate: "climate", KindParticle: "particle",
		KindCosmology: "cosmology", KindWeather: "weather",
	} {
		if k.String() != want {
			t.Errorf("Kind %d String %q", k, k.String())
		}
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind should still render")
	}
}

func TestBoxFilterPreservesConstant(t *testing.T) {
	row := []float32{5, 5, 5, 5, 5, 5, 5, 5}
	tmp := make([]float32, len(row))
	boxFilter(row, tmp, 2)
	for i, v := range row {
		if math.Abs(float64(v)-5) > 1e-6 {
			t.Fatalf("constant not preserved at %d: %v", i, v)
		}
	}
}

func TestBoxFilterReducesVariance(t *testing.T) {
	rng := newXorshift(9)
	row := make([]float32, 512)
	for i := range row {
		row[i] = float32(rng.normal())
	}
	varOf := func(r []float32) float64 {
		var m, v float64
		for _, x := range r {
			m += float64(x)
		}
		m /= float64(len(r))
		for _, x := range r {
			v += (float64(x) - m) * (float64(x) - m)
		}
		return v / float64(len(r))
	}
	before := varOf(row)
	tmp := make([]float32, len(row))
	boxFilter(row, tmp, 3)
	after := varOf(row)
	if after >= before {
		t.Fatalf("box filter did not reduce variance: %g -> %g", before, after)
	}
}

func TestXorshiftStats(t *testing.T) {
	rng := newXorshift(12345)
	n := 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := rng.normal()
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean %v", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance %v", variance)
	}
}

func TestXorshiftZeroSeed(t *testing.T) {
	rng := newXorshift(0)
	if rng.next() == rng.next() {
		t.Fatal("zero-seeded rng stuck")
	}
}

// Property: floats are always in [0,1).
func TestQuickFloatRange(t *testing.T) {
	f := func(seed uint64) bool {
		rng := newXorshift(seed)
		for i := 0; i < 100; i++ {
			v := rng.float()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGenerateNYX(b *testing.B) {
	spec, _ := Lookup("NYX", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f := Generate(spec, 8, int64(i))
		b.SetBytes(f.SizeBytes())
	}
}
