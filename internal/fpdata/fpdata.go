// Package fpdata generates synthetic scientific floating-point datasets that
// stand in for the SDRBench fields used by the paper (Table I and the
// Hurricane-ISABEL validation set of Section VI-A).
//
// Real SDRBench data is multi-hundred-MB and not redistributable here; what
// drives lossy-compressor behaviour is the statistical character of the
// fields — smoothness (spatial correlation), dimensionality and dynamic
// range — so each generator produces a seeded Gaussian-random-field-like
// signal with the dataset's documented shape and a domain-appropriate
// structure (latitudinal climate gradients for CESM, bulk-flow particle
// velocities for HACC, log-normal cosmological density for NYX, a vortex for
// the ISABEL wind fields).
//
// Generators are deterministic in (spec, scale, seed), so experiments are
// reproducible. The Scale knob shrinks every dimension so the full
// experiment matrix runs laptop-size; paper-scale byte counts are carried as
// metadata for the extrapolation steps (Fig 6).
package fpdata

import (
	"fmt"
	"math"
)

// Kind labels the structural family a field generator belongs to.
type Kind int

const (
	// KindClimate is a stack of smooth 2-D lat/lon slices with a
	// latitudinal gradient (CESM-ATM style).
	KindClimate Kind = iota
	// KindParticle is a 1-D stream of particle velocities: bulk flows with
	// superimposed thermal noise (HACC style).
	KindParticle
	// KindCosmology is a smooth 3-D log-normal density/velocity field (NYX
	// style).
	KindCosmology
	// KindWeather is a 3-D field organized around a vortex core
	// (Hurricane-ISABEL style).
	KindWeather
)

func (k Kind) String() string {
	switch k {
	case KindClimate:
		return "climate"
	case KindParticle:
		return "particle"
	case KindCosmology:
		return "cosmology"
	case KindWeather:
		return "weather"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Spec describes one field of one dataset at paper scale.
type Spec struct {
	Dataset    string // e.g. "NYX"
	Field      string // e.g. "velocity_x"
	Dims       []int  // paper-scale dimensions, slowest-varying first
	Kind       Kind
	PaperBytes int64  // size the paper reports for this field (per Table I)
	Domain     string // short description for Table I rendering
}

// NumElements returns the element count at paper scale.
func (s Spec) NumElements() int {
	n := 1
	for _, d := range s.Dims {
		n *= d
	}
	return n
}

// ScaleFor returns the scale divisor that shrinks the field to roughly
// targetElems elements, accounting for how many non-trivial dimensions the
// divisor applies to (a 3-D field shrinks cubically per unit of scale, a
// 1-D field only linearly).
func (s Spec) ScaleFor(targetElems int) int {
	if targetElems <= 0 {
		return 1
	}
	n := s.NumElements()
	if n <= targetElems {
		return 1
	}
	dims := 0
	for _, d := range s.Dims {
		if d > 1 {
			dims++
		}
	}
	if dims == 0 {
		dims = 1
	}
	ratio := float64(n) / float64(targetElems)
	scale := int(math.Ceil(math.Pow(ratio, 1/float64(dims))))
	if scale < 1 {
		scale = 1
	}
	return scale
}

// Field is a generated floating-point array plus its provenance.
type Field struct {
	Spec  Spec
	Scale int // the divisor applied to every paper-scale dimension
	Seed  int64
	Dims  []int // actual dimensions of Data
	Data  []float32
}

// NumElements returns the generated element count.
func (f *Field) NumElements() int { return len(f.Data) }

// SizeBytes returns the generated payload size in bytes.
func (f *Field) SizeBytes() int64 { return int64(len(f.Data)) * 4 }

// Range returns the min and max of the data, used to convert relative error
// bounds to absolute ones.
func (f *Field) Range() (lo, hi float32) {
	if len(f.Data) == 0 {
		return 0, 0
	}
	lo, hi = f.Data[0], f.Data[0]
	for _, v := range f.Data[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// TableI returns the three datasets of the paper's Table I.
func TableI() []Spec {
	return []Spec{
		{
			Dataset: "CESM-ATM", Field: "CLDHGH",
			Dims: []int{26, 1800, 3600}, Kind: KindClimate,
			PaperBytes: 673_900_000, Domain: "climate",
		},
		{
			Dataset: "HACC", Field: "vx",
			Dims: []int{1, 280_953_867}, Kind: KindParticle,
			PaperBytes: 1_046_900_000, Domain: "cosmology (particles)",
		},
		{
			Dataset: "NYX", Field: "velocity_x",
			Dims: []int{512, 512, 512}, Kind: KindCosmology,
			PaperBytes: 536_900_000, Domain: "cosmology (AMR)",
		},
	}
}

// IsabelFields returns the six 95 MB Hurricane-ISABEL fields used for the
// Fig 5 model-validation experiment (100x500x500 each).
func IsabelFields() []Spec {
	names := []string{"PRECIP", "P", "TC", "U", "V", "W"}
	specs := make([]Spec, len(names))
	for i, n := range names {
		specs[i] = Spec{
			Dataset: "Hurricane-ISABEL", Field: n,
			Dims: []int{100, 500, 500}, Kind: KindWeather,
			PaperBytes: 95_000_000, Domain: "weather",
		}
	}
	return specs
}

// Lookup finds a registry spec by dataset (and optional field) name.
func Lookup(dataset, field string) (Spec, error) {
	all := append(TableI(), IsabelFields()...)
	for _, s := range all {
		if s.Dataset == dataset && (field == "" || s.Field == field) {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("fpdata: unknown dataset %q field %q", dataset, field)
}

// scaledDims divides every dimension by scale, flooring at 1, except that
// the fastest-varying dimension keeps a minimum extent of 16 so blocks and
// predictors have something to work with.
func scaledDims(dims []int, scale int) []int {
	if scale < 1 {
		scale = 1
	}
	out := make([]int, len(dims))
	for i, d := range dims {
		v := d / scale
		if v < 1 {
			v = 1
		}
		out[i] = v
	}
	last := len(out) - 1
	if out[last] < 16 && dims[last] >= 16 {
		out[last] = 16
	}
	return out
}

// Generate materializes a field at 1/scale of paper dimensions.
func Generate(spec Spec, scale int, seed int64) *Field {
	dims := scaledDims(spec.Dims, scale)
	n := 1
	for _, d := range dims {
		n *= d
	}
	f := &Field{Spec: spec, Scale: scale, Seed: seed, Dims: dims, Data: make([]float32, n)}
	rng := newXorshift(uint64(seed) ^ hashString(spec.Dataset+"/"+spec.Field))
	switch spec.Kind {
	case KindClimate:
		genClimate(f, rng)
	case KindParticle:
		genParticle(f, rng)
	case KindCosmology:
		genCosmology(f, rng)
	case KindWeather:
		genWeather(f, rng)
	default:
		genCosmology(f, rng)
	}
	return f
}

// --- deterministic RNG ------------------------------------------------------

// xorshift128+ keeps generation fast and reproducible without math/rand's
// per-call interface overhead on the hot fill loops.
type xorshift struct{ s0, s1 uint64 }

func newXorshift(seed uint64) *xorshift {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	x := &xorshift{s0: seed, s1: seed ^ 0xBF58476D1CE4E5B9}
	for i := 0; i < 8; i++ {
		x.next()
	}
	return x
}

func (x *xorshift) next() uint64 {
	a, b := x.s0, x.s1
	x.s0 = b
	a ^= a << 23
	a ^= a >> 17
	a ^= b ^ (b >> 26)
	x.s1 = a
	return a + b
}

// float64 in [0,1).
func (x *xorshift) float() float64 {
	return float64(x.next()>>11) / (1 << 53)
}

// normal returns a standard-normal sample (Box–Muller; cache not needed at
// generator granularity).
func (x *xorshift) normal() float64 {
	u1 := x.float()
	for u1 == 0 {
		u1 = x.float()
	}
	u2 := x.float()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

func hashString(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// --- smoothing --------------------------------------------------------------

// smooth1D applies `passes` box-filter passes of the given radius along the
// fastest-varying axis of each row of length w. Repeated box filtering
// converges to Gaussian smoothing, which gives fields the spatial
// correlation lossy predictors exploit.
func smooth1D(data []float32, w, radius, passes int) {
	if w < 2 || radius < 1 {
		return
	}
	tmp := make([]float32, w)
	rows := len(data) / w
	for r := 0; r < rows; r++ {
		row := data[r*w : (r+1)*w]
		for p := 0; p < passes; p++ {
			boxFilter(row, tmp, radius)
		}
	}
}

// smoothAxis smooths along an arbitrary axis of a 3-D array with dims
// [d0,d1,d2] (slowest first). axis 2 is the contiguous one.
func smoothAxis(data []float32, d0, d1, d2, axis, radius, passes int) {
	if radius < 1 {
		return
	}
	switch axis {
	case 2:
		smooth1D(data, d2, radius, passes)
	case 1:
		line := make([]float32, d1)
		tmp := make([]float32, d1)
		for i := 0; i < d0; i++ {
			for k := 0; k < d2; k++ {
				for j := 0; j < d1; j++ {
					line[j] = data[(i*d1+j)*d2+k]
				}
				for p := 0; p < passes; p++ {
					boxFilter(line, tmp, radius)
				}
				for j := 0; j < d1; j++ {
					data[(i*d1+j)*d2+k] = line[j]
				}
			}
		}
	case 0:
		line := make([]float32, d0)
		tmp := make([]float32, d0)
		for j := 0; j < d1; j++ {
			for k := 0; k < d2; k++ {
				for i := 0; i < d0; i++ {
					line[i] = data[(i*d1+j)*d2+k]
				}
				for p := 0; p < passes; p++ {
					boxFilter(line, tmp, radius)
				}
				for i := 0; i < d0; i++ {
					data[(i*d1+j)*d2+k] = line[i]
				}
			}
		}
	}
}

// boxFilter computes a centered moving average with the given radius using a
// prefix-sum sweep; edges are clamped.
func boxFilter(row, tmp []float32, radius int) {
	n := len(row)
	if n == 0 {
		return
	}
	var acc float64
	// Initial window [0, radius].
	hi := radius
	if hi >= n {
		hi = n - 1
	}
	for i := 0; i <= hi; i++ {
		acc += float64(row[i])
	}
	count := hi + 1
	for i := 0; i < n; i++ {
		tmp[i] = float32(acc / float64(count))
		add := i + radius + 1
		if add < n {
			acc += float64(row[add])
			count++
		}
		del := i - radius
		if del >= 0 {
			acc -= float64(row[del])
			count--
		}
	}
	copy(row, tmp)
}

// --- generators ---------------------------------------------------------------

func dims3(f *Field) (d0, d1, d2 int) {
	switch len(f.Dims) {
	case 3:
		return f.Dims[0], f.Dims[1], f.Dims[2]
	case 2:
		return 1, f.Dims[0], f.Dims[1]
	default:
		return 1, 1, f.Dims[len(f.Dims)-1]
	}
}

func fillNoise(f *Field, rng *xorshift, sigma float64) {
	for i := range f.Data {
		f.Data[i] = float32(rng.normal() * sigma)
	}
}

func genClimate(f *Field, rng *xorshift) {
	d0, d1, d2 := dims3(f)
	fillNoise(f, rng, 1)
	smoothAxis(f.Data, d0, d1, d2, 2, max(2, d2/64), 3)
	smoothAxis(f.Data, d0, d1, d2, 1, max(2, d1/64), 3)
	// Latitudinal gradient + per-level offset: climate variables vary
	// smoothly with latitude and altitude.
	for i := 0; i < d0; i++ {
		levelOfs := 30 * math.Sin(float64(i)/float64(max(d0, 2))*math.Pi)
		for j := 0; j < d1; j++ {
			lat := float64(j)/float64(max(d1-1, 1))*math.Pi - math.Pi/2
			base := 25*math.Cos(lat) + levelOfs
			row := f.Data[(i*d1+j)*d2 : (i*d1+j+1)*d2]
			for k := range row {
				row[k] = float32(base + 8*float64(row[k]))
			}
		}
	}
}

func genParticle(f *Field, rng *xorshift) {
	// Velocities: sum of a few large-scale bulk flows (low-frequency
	// sinusoids in particle index, standing in for spatial clustering)
	// plus thermal noise. HACC velocity fields are notoriously noisy,
	// which is why they compress worst; keep the noise floor high.
	n := len(f.Data)
	type mode struct{ amp, freq, phase float64 }
	modes := make([]mode, 6)
	for m := range modes {
		modes[m] = mode{
			amp:   300 * rng.float(),
			freq:  2 * math.Pi * (0.5 + 4*rng.float()) / float64(max(n, 2)),
			phase: 2 * math.Pi * rng.float(),
		}
	}
	for i := 0; i < n; i++ {
		v := 0.0
		x := float64(i)
		for _, m := range modes {
			v += m.amp * math.Sin(m.freq*x+m.phase)
		}
		v += 120 * rng.normal()
		f.Data[i] = float32(v)
	}
}

func genCosmology(f *Field, rng *xorshift) {
	d0, d1, d2 := dims3(f)
	fillNoise(f, rng, 1)
	r := max(2, min(d0, d1, d2)/32)
	smoothAxis(f.Data, d0, d1, d2, 2, r, 2)
	smoothAxis(f.Data, d0, d1, d2, 1, r, 2)
	if d0 > 1 {
		smoothAxis(f.Data, d0, d1, d2, 0, r, 2)
	}
	// Rescale to a velocity-like range with heavy tails (bulk motions of
	// ~1e7 cm/s as in NYX velocity fields).
	for i, v := range f.Data {
		f.Data[i] = float32(2e7 * float64(v) * 6)
	}
}

func genWeather(f *Field, rng *xorshift) {
	d0, d1, d2 := dims3(f)
	fillNoise(f, rng, 1)
	smoothAxis(f.Data, d0, d1, d2, 2, max(2, d2/50), 2)
	smoothAxis(f.Data, d0, d1, d2, 1, max(2, d1/50), 2)
	// Superimpose a vortex centered mid-domain: tangential wind speed
	// peaks at the eyewall radius and decays outward, weakening with
	// altitude — the dominant structure in the ISABEL U/V fields.
	cy, cx := float64(d1)/2, float64(d2)/2
	rmax := 0.12 * float64(min(d1, d2))
	if rmax < 1 {
		rmax = 1
	}
	for i := 0; i < d0; i++ {
		alt := 1 - 0.6*float64(i)/float64(max(d0, 2))
		for j := 0; j < d1; j++ {
			for k := 0; k < d2; k++ {
				dy, dx := float64(j)-cy, float64(k)-cx
				r := math.Hypot(dy, dx)
				// Rankine-vortex tangential speed profile.
				var vt float64
				if r < rmax {
					vt = 60 * r / rmax
				} else {
					vt = 60 * rmax / r
				}
				idx := (i*d1+j)*d2 + k
				f.Data[idx] = float32(alt*vt*math.Cos(math.Atan2(dy, dx)) + 5*float64(f.Data[idx]))
			}
		}
	}
}
