package tables

import (
	"math"
	"strings"
	"testing"
)

func TestRenderAlignment(t *testing.T) {
	out := Render("T", []string{"A", "LongHeader"}, [][]string{
		{"x", "1"},
		{"longervalue", "2"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "T") {
		t.Fatal("missing title")
	}
	if !strings.Contains(lines[1], "LongHeader") {
		t.Fatal("missing header")
	}
	// Columns align: "1" and "2" start at the same offset.
	if strings.Index(lines[3], "1") != strings.Index(lines[4], "2") {
		t.Fatalf("misaligned columns:\n%s", out)
	}
}

func TestRenderNoTitle(t *testing.T) {
	out := Render("", []string{"H"}, [][]string{{"v"}})
	if strings.HasPrefix(out, "\n") {
		t.Fatal("leading blank line without title")
	}
}

func TestPlotBasic(t *testing.T) {
	s := []PlotSeries{
		{Label: "up", X: []float64{0, 1, 2}, Y: []float64{0, 1, 2}},
		{Label: "down", X: []float64{0, 1, 2}, Y: []float64{2, 1, 0}},
	}
	out := Plot("fig", "f", "p", s)
	if !strings.Contains(out, "fig") || !strings.Contains(out, "up") || !strings.Contains(out, "down") {
		t.Fatalf("plot missing parts:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("plot missing markers:\n%s", out)
	}
}

func TestPlotEmpty(t *testing.T) {
	out := Plot("fig", "x", "y", nil)
	if !strings.Contains(out, "no data") {
		t.Fatalf("empty plot: %q", out)
	}
	nan := Plot("fig", "x", "y", []PlotSeries{{X: []float64{math.NaN()}, Y: []float64{math.NaN()}}})
	if !strings.Contains(nan, "no data") {
		t.Fatalf("NaN-only plot: %q", nan)
	}
}

func TestPlotConstantSeries(t *testing.T) {
	// Degenerate ranges must not divide by zero.
	out := Plot("c", "x", "y", []PlotSeries{{Label: "flat", X: []float64{1, 1}, Y: []float64{5, 5}}})
	if !strings.Contains(out, "flat") {
		t.Fatalf("constant plot:\n%s", out)
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[int64]string{
		512:             "512 B",
		2048:            "2.0 KiB",
		512 << 30:       "512.0 GiB",
		(1 << 40) + 512: "1.0 TiB",
	}
	for in, want := range cases {
		if got := FormatBytes(in); got != want {
			t.Errorf("FormatBytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestFormatSI(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{6500, "6.50 kJ"},
		{2.5e6, "2.50 MJ"},
		{3, "3.00 J"},
		{0.004, "4.00 mJ"},
		{12e9, "12.00 GJ"},
		{0, "0.00 J"},
	}
	for _, c := range cases {
		if got := FormatSI(c.v, "J"); got != c.want {
			t.Errorf("FormatSI(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestFormatSILargeTiers(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{1.8e16, "18.00 PB"},
		{2e12, "2.00 TB"},
		{3e18, "3.00 EB"},
	}
	for _, c := range cases {
		if got := FormatSI(c.v, "B"); got != c.want {
			t.Errorf("FormatSI(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}
