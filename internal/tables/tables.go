// Package tables renders the paper's tables and figures as text: aligned
// ASCII tables for Tables I-V and terminal line charts for Figures 1-6, so
// every artifact of the evaluation section can be regenerated on stdout.
package tables

import (
	"fmt"
	"math"
	"strings"
)

// Render formats an aligned ASCII table with a header rule.
func Render(title string, headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	total := 0
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(len(widths)-1)))
	b.WriteByte('\n')
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// PlotSeries is one line of a terminal chart.
type PlotSeries struct {
	Label string
	X     []float64
	Y     []float64
}

// markers cycles through distinguishable glyphs per series.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Plot renders series as a fixed-size ASCII line chart with axes, legend
// and value ranges — the terminal stand-in for the paper's figures.
func Plot(title, xlabel, ylabel string, series []PlotSeries) string {
	const width, height = 64, 18
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	any := false
	for _, s := range series {
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			any = true
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if !any {
		b.WriteString("(no data)\n")
		return b.String()
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	// Pad the y-range slightly so extremes are visible.
	pad := (ymax - ymin) * 0.05
	ymin -= pad
	ymax += pad

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		m := markers[si%len(markers)]
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			col := int((s.X[i] - xmin) / (xmax - xmin) * float64(width-1))
			row := height - 1 - int((s.Y[i]-ymin)/(ymax-ymin)*float64(height-1))
			if col >= 0 && col < width && row >= 0 && row < height {
				grid[row][col] = m
			}
		}
	}
	fmt.Fprintf(&b, "%s (top %.4g, bottom %.4g)\n", ylabel, ymax, ymin)
	for _, row := range grid {
		b.WriteString("| ")
		b.Write(row)
		b.WriteByte('\n')
	}
	b.WriteString("+" + strings.Repeat("-", width+1) + "\n")
	fmt.Fprintf(&b, "  %s: %.4g .. %.4g\n", xlabel, xmin, xmax)
	for si, s := range series {
		fmt.Fprintf(&b, "  %c %s\n", markers[si%len(markers)], s.Label)
	}
	return b.String()
}

// FormatBytes renders a byte count in human units.
func FormatBytes(n int64) string {
	const unit = 1024
	if n < unit {
		return fmt.Sprintf("%d B", n)
	}
	div, exp := int64(unit), 0
	for v := n / unit; v >= unit; v /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f %ciB", float64(n)/float64(div), "KMGTPE"[exp])
}

// FormatSI renders a value with an SI suffix (k, M, G ...).
func FormatSI(v float64, unitName string) string {
	abs := math.Abs(v)
	switch {
	case abs >= 1e18:
		return fmt.Sprintf("%.2f E%s", v/1e18, unitName)
	case abs >= 1e15:
		return fmt.Sprintf("%.2f P%s", v/1e15, unitName)
	case abs >= 1e12:
		return fmt.Sprintf("%.2f T%s", v/1e12, unitName)
	case abs >= 1e9:
		return fmt.Sprintf("%.2f G%s", v/1e9, unitName)
	case abs >= 1e6:
		return fmt.Sprintf("%.2f M%s", v/1e6, unitName)
	case abs >= 1e3:
		return fmt.Sprintf("%.2f k%s", v/1e3, unitName)
	case abs >= 1 || abs == 0:
		return fmt.Sprintf("%.2f %s", v, unitName)
	case abs >= 1e-3:
		return fmt.Sprintf("%.2f m%s", v*1e3, unitName)
	default:
		return fmt.Sprintf("%.2e %s", v, unitName)
	}
}
