// Package squant implements uniform scalar quantization — the classic
// error-bounded baseline the SZ line of work measures itself against. Each
// value is independently quantized to round(x / 2eb), zigzag-varint
// encoded, and passed through the lossless stage. No prediction, no
// transform: the gap between squant's ratios and sz's quantifies what
// Lorenzo/regression prediction buys, which is why it lives in the codec
// registry alongside the paper's two compressors.
package squant

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"lcpio/internal/lossless"
)

const (
	magic   = 0x53515543 // "SQUC"
	version = 1

	// maxQuantum bounds |q| so reconstruction stays finite; values beyond
	// it are stored verbatim.
	maxQuantum = 1 << 46
)

// ErrCorrupt is returned when decompressing malformed input.
var ErrCorrupt = errors.New("squant: corrupt stream")

// Float constrains the element types the codec accepts.
type Float interface {
	~float32 | ~float64
}

func elemKind[F Float]() uint32 {
	var z F
	if _, ok := any(z).(float32); ok {
		return 32
	}
	return 64
}

// Compress quantizes float32 data under absolute error bound eb.
func Compress(data []float32, dims []int, eb float64) ([]byte, error) {
	return compressGeneric(data, dims, eb)
}

// Compress64 is Compress for float64 data.
func Compress64(data []float64, dims []int, eb float64) ([]byte, error) {
	return compressGeneric(data, dims, eb)
}

// Decompress reverses Compress.
func Decompress(buf []byte) ([]float32, []int, error) {
	return decompressGeneric[float32](buf)
}

// Decompress64 reverses Compress64.
func Decompress64(buf []byte) ([]float64, []int, error) {
	return decompressGeneric[float64](buf)
}

func compressGeneric[F Float](data []F, dims []int, eb float64) ([]byte, error) {
	if !(eb > 0) || math.IsInf(eb, 0) {
		return nil, fmt.Errorf("squant: invalid error bound %v", eb)
	}
	n := 1
	if len(dims) == 0 {
		return nil, errors.New("squant: empty dims")
	}
	for _, d := range dims {
		if d <= 0 {
			return nil, fmt.Errorf("squant: non-positive dimension %d", d)
		}
		n *= d
	}
	if n != len(data) {
		return nil, fmt.Errorf("squant: dims %v imply %d elements, data has %d", dims, n, len(data))
	}
	twoEB := 2 * eb

	payload := make([]byte, 0, n+64)
	payload = binary.LittleEndian.AppendUint32(payload, magic)
	payload = binary.LittleEndian.AppendUint32(payload, version)
	payload = binary.LittleEndian.AppendUint32(payload, elemKind[F]())
	payload = binary.LittleEndian.AppendUint64(payload, math.Float64bits(eb))
	payload = binary.LittleEndian.AppendUint32(payload, uint32(len(dims)))
	for _, d := range dims {
		payload = binary.LittleEndian.AppendUint64(payload, uint64(d))
	}

	var exceptIdx []int
	var exceptVal []F
	quanta := make([]byte, 0, n*2)
	var prev int64
	for i, v := range data {
		f := float64(v)
		q := math.Floor(f/twoEB + 0.5)
		recon := q * twoEB
		if math.IsNaN(f) || math.IsInf(f, 0) || math.Abs(q) > maxQuantum ||
			math.Abs(float64(F(recon))-f) > eb {
			exceptIdx = append(exceptIdx, i)
			exceptVal = append(exceptVal, v)
			q = 0
		}
		// Delta against the previous quantum: smooth data produces tiny
		// deltas, which varint-code to a byte or two.
		qi := int64(q)
		quanta = binary.AppendVarint(quanta, qi-prev)
		prev = qi
	}
	payload = binary.LittleEndian.AppendUint64(payload, uint64(len(exceptIdx)))
	for i, idx := range exceptIdx {
		payload = binary.LittleEndian.AppendUint64(payload, uint64(idx))
		switch x := any(exceptVal[i]).(type) {
		case float32:
			payload = binary.LittleEndian.AppendUint32(payload, math.Float32bits(x))
		default:
			payload = binary.LittleEndian.AppendUint64(payload,
				math.Float64bits(any(exceptVal[i]).(float64)))
		}
	}
	payload = binary.LittleEndian.AppendUint64(payload, uint64(len(quanta)))
	payload = append(payload, quanta...)
	return lossless.Compress(payload, lossless.Defaults()), nil
}

func decompressGeneric[F Float](buf []byte) ([]F, []int, error) {
	payload, err := lossless.Decompress(buf)
	if err != nil {
		return nil, nil, fmt.Errorf("squant: lossless stage: %w", err)
	}
	off := 0
	u32 := func() uint32 {
		if off+4 > len(payload) {
			off = len(payload) + 1
			return 0
		}
		v := binary.LittleEndian.Uint32(payload[off:])
		off += 4
		return v
	}
	u64 := func() uint64 {
		if off+8 > len(payload) {
			off = len(payload) + 1
			return 0
		}
		v := binary.LittleEndian.Uint64(payload[off:])
		off += 8
		return v
	}
	if u32() != magic {
		return nil, nil, ErrCorrupt
	}
	if v := u32(); v != version {
		return nil, nil, fmt.Errorf("squant: unsupported version %d", v)
	}
	if kind := u32(); kind != elemKind[F]() {
		return nil, nil, fmt.Errorf("squant: stream holds float%d values, caller asked for float%d",
			kind, elemKind[F]())
	}
	eb := math.Float64frombits(u64())
	ndims := int(u32())
	if off > len(payload) || ndims <= 0 || ndims > 8 || !(eb > 0) {
		return nil, nil, ErrCorrupt
	}
	dims := make([]int, ndims)
	n := 1
	for i := range dims {
		d := u64()
		if d == 0 || d > 1<<40 {
			return nil, nil, ErrCorrupt
		}
		dims[i] = int(d)
		n *= int(d)
		if n <= 0 || n > 1<<34 {
			return nil, nil, ErrCorrupt
		}
	}
	numExc := int(u64())
	if off > len(payload) || numExc < 0 || numExc > n {
		return nil, nil, ErrCorrupt
	}
	excIdx := make([]int, numExc)
	excVal := make([]F, numExc)
	var zero F
	_, is32 := any(zero).(float32)
	for i := range excIdx {
		idx := int(u64())
		if idx < 0 || idx >= n {
			return nil, nil, ErrCorrupt
		}
		excIdx[i] = idx
		if is32 {
			excVal[i] = F(math.Float32frombits(u32()))
		} else {
			excVal[i] = F(math.Float64frombits(u64()))
		}
	}
	qLen := int(u64())
	if off > len(payload) || qLen < 0 || off+qLen > len(payload) {
		return nil, nil, ErrCorrupt
	}
	quanta := payload[off : off+qLen]

	out := make([]F, n)
	twoEB := 2 * eb
	var prev int64
	pos := 0
	for i := 0; i < n; i++ {
		d, sz := binary.Varint(quanta[pos:])
		if sz <= 0 {
			return nil, nil, ErrCorrupt
		}
		pos += sz
		prev += d
		out[i] = F(float64(prev) * twoEB)
	}
	for i, idx := range excIdx {
		out[idx] = excVal[i]
	}
	return out, dims, nil
}
