package squant

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"lcpio/internal/fpdata"
	"lcpio/internal/sz"
)

func maxAbsErr(a, b []float32) float64 {
	m := 0.0
	for i := range a {
		d := math.Abs(float64(a[i]) - float64(b[i]))
		if d > m {
			m = d
		}
	}
	return m
}

func roundTrip(t *testing.T, data []float32, dims []int, eb float64) []byte {
	t.Helper()
	comp, err := Compress(data, dims, eb)
	if err != nil {
		t.Fatalf("Compress: %v", err)
	}
	out, gotDims, err := Decompress(comp)
	if err != nil {
		t.Fatalf("Decompress: %v", err)
	}
	if len(out) != len(data) || len(gotDims) != len(dims) {
		t.Fatal("shape mismatch")
	}
	if e := maxAbsErr(data, out); e > eb {
		t.Fatalf("bound violated: %g > %g", e, eb)
	}
	return comp
}

func TestBasicRoundTrip(t *testing.T) {
	data := make([]float32, 5000)
	for i := range data {
		data[i] = float32(math.Sin(float64(i) / 40))
	}
	comp := roundTrip(t, data, []int{5000}, 1e-3)
	if r := float64(len(data)*4) / float64(len(comp)); r < 3 {
		t.Errorf("smooth data should compress >3x even without prediction, got %.2f", r)
	}
}

func TestConstantData(t *testing.T) {
	data := make([]float32, 1000)
	for i := range data {
		data[i] = 7.5
	}
	comp := roundTrip(t, data, []int{1000}, 1e-4)
	if len(comp) > 600 {
		t.Errorf("constant data compressed to %d bytes", len(comp))
	}
}

func TestExceptions(t *testing.T) {
	data := []float32{0, 1, float32(math.NaN()), float32(math.Inf(1)), -5,
		math.MaxFloat32, 3, 2, 1, 0, -1, -2, 0, 0, 1e-30, 42}
	comp, err := Compress(data, []int{16}, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := Decompress(comp)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(float64(out[2])) || !math.IsInf(float64(out[3]), 1) {
		t.Error("specials not preserved")
	}
	if out[5] != math.MaxFloat32 {
		t.Errorf("huge value not exact: %v", out[5])
	}
}

func TestSZBeatsScalarQuantization(t *testing.T) {
	// The whole point of the baseline: prediction should beat it clearly
	// on smooth multidimensional data.
	spec, _ := fpdata.Lookup("NYX", "")
	f := fpdata.Generate(spec, spec.ScaleFor(1<<15), 4)
	lo, hi := 0.0, 0.0
	for _, v := range f.Data {
		lo = math.Min(lo, float64(v))
		hi = math.Max(hi, float64(v))
	}
	eb := 1e-3 * (hi - lo)
	sq, err := Compress(f.Data, f.Dims, eb)
	if err != nil {
		t.Fatal(err)
	}
	szc, err := sz.Compress(f.Data, f.Dims, eb)
	if err != nil {
		t.Fatal(err)
	}
	if len(szc) >= len(sq) {
		t.Errorf("sz (%d B) should beat scalar quantization (%d B)", len(szc), len(sq))
	}
}

func TestValidation(t *testing.T) {
	data := []float32{1, 2, 3}
	if _, err := Compress(data, []int{4}, 1e-3); err == nil {
		t.Error("dims mismatch accepted")
	}
	if _, err := Compress(data, nil, 1e-3); err == nil {
		t.Error("empty dims accepted")
	}
	if _, err := Compress(data, []int{3}, 0); err == nil {
		t.Error("zero bound accepted")
	}
	if _, _, err := Decompress([]byte("junk")); err == nil {
		t.Error("garbage accepted")
	}
	comp, _ := Compress(data, []int{3}, 1e-3)
	for _, cut := range []int{0, 1, len(comp) - 1} {
		if _, _, err := Decompress(comp[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestQuickBoundInvariant(t *testing.T) {
	f := func(seed int64, ebExp uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(3000) + 1
		data := make([]float32, n)
		for i := range data {
			data[i] = float32(rng.NormFloat64() * math.Pow(10, float64(rng.Intn(9)-4)))
		}
		eb := math.Pow(10, -float64(ebExp%6))
		comp, err := Compress(data, []int{n}, eb)
		if err != nil {
			return false
		}
		out, _, err := Decompress(comp)
		return err == nil && maxAbsErr(data, out) <= eb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCompress(b *testing.B) {
	data := make([]float32, 1<<18)
	for i := range data {
		data[i] = float32(math.Sin(float64(i) / 30))
	}
	b.SetBytes(int64(len(data) * 4))
	for i := 0; i < b.N; i++ {
		if _, err := Compress(data, []int{len(data)}, 1e-3); err != nil {
			b.Fatal(err)
		}
	}
}
