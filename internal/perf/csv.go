package perf

import (
	"encoding/csv"
	"fmt"
	"io"
)

// WriteCSV emits the raw per-frequency aggregates of one or more sweeps as
// CSV, one row per (sweep, frequency), for external plotting tools. Columns
// carry the mean and the 95% CI half-width of power, runtime and energy.
func WriteCSV(w io.Writer, sweeps ...Sweep) error {
	cw := csv.NewWriter(w)
	header := []string{
		"label", "chip", "freq_ghz",
		"power_w", "power_ci95",
		"runtime_s", "runtime_ci95",
		"energy_j", "energy_ci95",
		"reps",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, sw := range sweeps {
		for _, p := range sw.Points {
			row := []string{
				sw.Label, sw.Chip,
				fmt.Sprintf("%.3f", p.FreqGHz),
				fmt.Sprintf("%.6g", p.Power.Mean),
				fmt.Sprintf("%.6g", p.Power.CI95),
				fmt.Sprintf("%.6g", p.Runtime.Mean),
				fmt.Sprintf("%.6g", p.Runtime.CI95),
				fmt.Sprintf("%.6g", p.Energy.Mean),
				fmt.Sprintf("%.6g", p.Energy.CI95),
				fmt.Sprintf("%d", p.Power.N),
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
