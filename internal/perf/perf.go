// Package perf is the measurement harness of Section III: it sweeps a
// workload across a chip's full P-state grid (800 MHz to base clock in
// 50 MHz steps), repeats each point (10 times in the paper), and aggregates
// energy, runtime and average power into per-frequency summaries with 95%
// confidence intervals — the raw material for the models of Section IV and
// the characteristic plots of Figures 1-4.
package perf

import (
	"fmt"
	"strconv"

	"lcpio/internal/machine"
	"lcpio/internal/obs"
	"lcpio/internal/stats"
)

// DefaultRepetitions matches the paper's repeat count per frequency step.
const DefaultRepetitions = 10

// Config controls a sweep.
type Config struct {
	// Repetitions per frequency point; 0 means DefaultRepetitions.
	Repetitions int
	// Frequencies overrides the swept grid; nil means the chip's full
	// P-state grid.
	Frequencies []float64
}

func (c Config) normalized() Config {
	if c.Repetitions <= 0 {
		c.Repetitions = DefaultRepetitions
	}
	return c
}

// Point aggregates the repeated measurements at one frequency.
type Point struct {
	FreqGHz float64
	Power   stats.Summary // average watts per run
	Runtime stats.Summary // seconds per run
	Energy  stats.Summary // joules per run
}

// Sweep is one workload measured across a frequency grid.
type Sweep struct {
	Label  string
	Chip   string // chip series, e.g. "Broadwell"
	Points []Point
}

// Run sweeps the workload on the node per the config.
func Run(node *machine.Node, w machine.Workload, label string, cfg Config) (Sweep, error) {
	cfg = cfg.normalized()
	freqs := cfg.Frequencies
	if freqs == nil {
		freqs = node.Chip.Frequencies()
	}
	if len(freqs) == 0 {
		return Sweep{}, fmt.Errorf("perf: empty frequency grid")
	}
	span := obs.Start("perf.sweep")
	span.SetAttr("label", label)
	defer span.End()
	obs.Add("lcpio_sweep_points_expected", int64(len(freqs)))
	sw := Sweep{Label: label, Chip: node.Chip.Series, Points: make([]Point, 0, len(freqs))}
	for _, f := range freqs {
		ps := obs.Start("perf.point")
		if ps.Enabled() {
			ps.SetAttr("freq_ghz", strconv.FormatFloat(f, 'g', 4, 64))
		}
		powers := make([]float64, cfg.Repetitions)
		times := make([]float64, cfg.Repetitions)
		energies := make([]float64, cfg.Repetitions)
		for r := 0; r < cfg.Repetitions; r++ {
			s := node.Run(w, f)
			powers[r] = s.AvgWatts
			times[r] = s.Seconds
			energies[r] = s.Joules
		}
		pw, err := stats.Summarize(powers)
		if err != nil {
			ps.End()
			return Sweep{}, err
		}
		tm, _ := stats.Summarize(times)
		en, _ := stats.Summarize(energies)
		sw.Points = append(sw.Points, Point{FreqGHz: f, Power: pw, Runtime: tm, Energy: en})
		ps.End()
		obs.Add("lcpio_sweep_reps_total", int64(cfg.Repetitions))
		obs.Add("lcpio_sweep_points_total", 1)
	}
	return sw, nil
}

// Frequencies lists the swept grid.
func (s Sweep) Frequencies() []float64 {
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.FreqGHz
	}
	return out
}

// MeanPower lists mean watts per point.
func (s Sweep) MeanPower() []float64 {
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.Power.Mean
	}
	return out
}

// MeanRuntime lists mean seconds per point.
func (s Sweep) MeanRuntime() []float64 {
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.Runtime.Mean
	}
	return out
}

// MeanEnergy lists mean joules per point.
func (s Sweep) MeanEnergy() []float64 {
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.Energy.Mean
	}
	return out
}

// MaxFreqPoint returns the point at the highest swept frequency — the
// paper's scaling reference.
func (s Sweep) MaxFreqPoint() (Point, error) {
	if len(s.Points) == 0 {
		return Point{}, fmt.Errorf("perf: empty sweep")
	}
	best := s.Points[0]
	for _, p := range s.Points[1:] {
		if p.FreqGHz > best.FreqGHz {
			best = p
		}
	}
	return best, nil
}

// ScaledPower returns power normalized by the max-frequency mean — the
// y-axis of Figures 1 and 3.
func (s Sweep) ScaledPower() ([]float64, error) {
	ref, err := s.MaxFreqPoint()
	if err != nil {
		return nil, err
	}
	return stats.ScaleBy(s.MeanPower(), ref.Power.Mean), nil
}

// ScaledRuntime returns runtime normalized by the max-frequency mean — the
// y-axis of Figures 2 and 4.
func (s Sweep) ScaledRuntime() ([]float64, error) {
	ref, err := s.MaxFreqPoint()
	if err != nil {
		return nil, err
	}
	return stats.ScaleBy(s.MeanRuntime(), ref.Runtime.Mean), nil
}

// ScaledPowerCI returns the scaled 95% CI half-widths matching ScaledPower
// — the shaded bands of the figures.
func (s Sweep) ScaledPowerCI() ([]float64, error) {
	ref, err := s.MaxFreqPoint()
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		if ref.Power.Mean != 0 {
			out[i] = p.Power.CI95 / ref.Power.Mean
		}
	}
	return out, nil
}

// Merge concatenates several sweeps' points into one observation set —
// how the paper pools partitions ("Total", per-compressor, per-chip) for
// regression (Table III).
func Merge(label string, sweeps ...Sweep) Sweep {
	out := Sweep{Label: label, Chip: "mixed"}
	if len(sweeps) > 0 {
		allSame := true
		for _, s := range sweeps[1:] {
			if s.Chip != sweeps[0].Chip {
				allSame = false
				break
			}
		}
		if allSame {
			out.Chip = sweeps[0].Chip
		}
	}
	for _, s := range sweeps {
		out.Points = append(out.Points, s.Points...)
	}
	return out
}

// ScaledObservations flattens a sweep into (frequency, scaled power) pairs
// for regression against Eqn 2.
func (s Sweep) ScaledObservations() (fs, ps []float64, err error) {
	scaled, err := s.ScaledPower()
	if err != nil {
		return nil, nil, err
	}
	return s.Frequencies(), scaled, nil
}
