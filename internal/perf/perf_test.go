package perf

import (
	"encoding/csv"
	"math"
	"strings"
	"testing"

	"lcpio/internal/dvfs"
	"lcpio/internal/machine"
)

func sweepFor(t *testing.T, chip *dvfs.Chip, seed int64, cfg Config) Sweep {
	t.Helper()
	node := machine.NewNode(chip, seed)
	w, err := machine.CompressionWorkload("sz", 256<<20, 1e-3, chip)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := Run(node, w, "sz/"+chip.Series, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sw
}

func TestSweepCoversFullGrid(t *testing.T) {
	chip := dvfs.Broadwell()
	sw := sweepFor(t, chip, 1, Config{})
	if len(sw.Points) != len(chip.Frequencies()) {
		t.Fatalf("sweep has %d points, grid has %d", len(sw.Points), len(chip.Frequencies()))
	}
	if sw.Chip != "Broadwell" {
		t.Fatalf("chip label %q", sw.Chip)
	}
	for _, p := range sw.Points {
		if p.Power.N != DefaultRepetitions {
			t.Fatalf("point at %v has %d reps", p.FreqGHz, p.Power.N)
		}
		if p.Power.Mean <= 0 || p.Runtime.Mean <= 0 || p.Energy.Mean <= 0 {
			t.Fatalf("degenerate point %+v", p)
		}
	}
}

func TestCustomFrequencies(t *testing.T) {
	chip := dvfs.Skylake()
	sw := sweepFor(t, chip, 1, Config{Frequencies: []float64{0.8, 1.5, 2.2}, Repetitions: 3})
	if len(sw.Points) != 3 || sw.Points[1].FreqGHz != 1.5 {
		t.Fatalf("custom grid: %+v", sw.Frequencies())
	}
	if sw.Points[0].Power.N != 3 {
		t.Fatalf("reps %d", sw.Points[0].Power.N)
	}
}

func TestScaledPowerEndsAtOne(t *testing.T) {
	sw := sweepFor(t, dvfs.Broadwell(), 2, Config{})
	scaled, err := sw.ScaledPower()
	if err != nil {
		t.Fatal(err)
	}
	last := scaled[len(scaled)-1]
	if math.Abs(last-1) > 1e-9 {
		t.Fatalf("scaled power at fmax = %v, want 1", last)
	}
	// The paper's Figure 1 shape: scaled power stays within (0.5, 1.05)
	// and the minimum sits at the lowest frequency.
	minIdx := 0
	for i, v := range scaled {
		if v < scaled[minIdx] {
			minIdx = i
		}
		if v < 0.5 || v > 1.05 {
			t.Fatalf("scaled power %v out of regime at %v GHz", v, sw.Points[i].FreqGHz)
		}
	}
	if minIdx != 0 {
		t.Fatalf("power minimum at index %d, want lowest frequency", minIdx)
	}
}

func TestScaledRuntimeMinimumAtMaxFreq(t *testing.T) {
	sw := sweepFor(t, dvfs.Skylake(), 3, Config{})
	scaled, err := sw.ScaledRuntime()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(scaled[len(scaled)-1]-1) > 1e-9 {
		t.Fatalf("scaled runtime at fmax = %v", scaled[len(scaled)-1])
	}
	for i := 0; i < len(scaled)-1; i++ {
		if scaled[i] < 1 {
			t.Fatalf("runtime below reference at %v GHz: %v (noise beyond model?)",
				sw.Points[i].FreqGHz, scaled[i])
		}
	}
}

func TestScaledPowerCIBandsAreTight(t *testing.T) {
	sw := sweepFor(t, dvfs.Broadwell(), 4, Config{})
	cis, err := sw.ScaledPowerCI()
	if err != nil {
		t.Fatal(err)
	}
	for i, ci := range cis {
		if ci < 0 || ci > 0.05 {
			t.Fatalf("CI band %v at %v GHz implausible for 1%% noise", ci, sw.Points[i].FreqGHz)
		}
	}
}

func TestMaxFreqPoint(t *testing.T) {
	sw := Sweep{Points: []Point{{FreqGHz: 1.0}, {FreqGHz: 2.0}, {FreqGHz: 1.5}}}
	p, err := sw.MaxFreqPoint()
	if err != nil || p.FreqGHz != 2.0 {
		t.Fatalf("MaxFreqPoint: %+v %v", p, err)
	}
	if _, err := (Sweep{}).MaxFreqPoint(); err == nil {
		t.Fatal("empty sweep accepted")
	}
}

func TestMerge(t *testing.T) {
	a := Sweep{Chip: "Broadwell", Points: []Point{{FreqGHz: 1}}}
	b := Sweep{Chip: "Skylake", Points: []Point{{FreqGHz: 2}, {FreqGHz: 3}}}
	m := Merge("total", a, b)
	if len(m.Points) != 3 || m.Chip != "mixed" || m.Label != "total" {
		t.Fatalf("Merge: %+v", m)
	}
	same := Merge("bw", a, a)
	if same.Chip != "Broadwell" {
		t.Fatalf("same-chip merge label %q", same.Chip)
	}
}

func TestScaledObservations(t *testing.T) {
	sw := sweepFor(t, dvfs.Broadwell(), 5, Config{Repetitions: 2})
	fs, ps, err := sw.ScaledObservations()
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != len(ps) || len(fs) != len(sw.Points) {
		t.Fatalf("observation lengths %d %d", len(fs), len(ps))
	}
}

func TestEmptyGridRejected(t *testing.T) {
	node := machine.NewNode(dvfs.Broadwell(), 1)
	w, _ := machine.CompressionWorkload("sz", 1<<20, 1e-3, node.Chip)
	if _, err := Run(node, w, "x", Config{Frequencies: []float64{}}); err == nil {
		// nil means full grid, but explicitly empty must fail
		t.Skip("empty slice treated as full grid")
	}
}

func TestMeanAccessorsAligned(t *testing.T) {
	sw := sweepFor(t, dvfs.Skylake(), 6, Config{Repetitions: 2})
	if len(sw.MeanPower()) != len(sw.MeanRuntime()) ||
		len(sw.MeanRuntime()) != len(sw.MeanEnergy()) ||
		len(sw.MeanEnergy()) != len(sw.Frequencies()) {
		t.Fatal("accessor lengths differ")
	}
}

func TestWriteCSV(t *testing.T) {
	sw := sweepFor(t, dvfs.Broadwell(), 9, Config{Repetitions: 2, Frequencies: []float64{0.8, 2.0}})
	var buf strings.Builder
	if err := WriteCSV(&buf, sw, sw); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// header + 2 sweeps x 2 points
	if len(lines) != 5 {
		t.Fatalf("CSV has %d lines:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "label,chip,freq_ghz") {
		t.Fatalf("header: %s", lines[0])
	}
	rec, err := csv.NewReader(strings.NewReader(buf.String())).ReadAll()
	if err != nil {
		t.Fatalf("CSV does not re-parse: %v", err)
	}
	if len(rec[1]) != 10 {
		t.Fatalf("row width %d", len(rec[1]))
	}
}
