package perf

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"lcpio/internal/stats"
)

func testSweep() Sweep {
	return Sweep{Label: "sz/NYX", Chip: "Broadwell", Points: []Point{{
		FreqGHz: 1.5,
		Power:   stats.Summary{Mean: 10, CI95: 0.5, N: 3},
		Runtime: stats.Summary{Mean: 2, CI95: 0.1, N: 3},
		Energy:  stats.Summary{Mean: 20, CI95: 1, N: 3},
	}}}
}

// TestWriteCSVFlushesShortOutput guards the csv.Writer Flush before
// return: without it, outputs smaller than the internal buffer are
// silently truncated to an empty file.
func TestWriteCSVFlushesShortOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, testSweep()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "label,chip,freq_ghz") {
		t.Fatalf("header missing:\n%s", out)
	}
	if !strings.Contains(out, "sz/NYX,Broadwell,1.500,10,0.5,2,0.1,20,1,3") {
		t.Fatalf("data row missing or truncated:\n%s", out)
	}
}

// failAfterWriter fails every write after the first n bytes, modeling a
// full disk part-way through the flush.
type failAfterWriter struct {
	n int
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errors.New("disk full")
	}
	if len(p) > w.n {
		p = p[:w.n]
	}
	w.n -= len(p)
	return len(p), nil
}

func TestWriteCSVPropagatesFlushError(t *testing.T) {
	if err := WriteCSV(&failAfterWriter{n: 8}, testSweep()); err == nil {
		t.Fatal("write error swallowed")
	}
}
