package machine

import (
	"time"

	"lcpio/internal/dvfs"
	"lcpio/internal/nfs"
	"lcpio/internal/obs"
)

// Erasure-coding cost model for span pricing: GF(2^8) table-lookup
// multiply-accumulate over every payload byte, streaming access pattern.
const (
	ecCyclesPerByte = 4.0
	ecStallPerByte  = 0.5e-9
)

// EnergyModel returns an obs.EnergyModel that prices instrumented spans'
// workloads on chip at base clock, using the same calibration constants
// the phase-campaign models run on (DESIGN.md section 5c maps spans to
// the paper's Section III phases; Eqns 2-3 price them).
//
// This is the flame-view attribution model: classes are priced at typical
// operating points (ratio ~8, relEB 1e-3, the default mount geometry)
// because the span site only carries a byte count. Exact campaign
// energies still come from phases.Execute, which attributes its own
// per-phase joules via Span.AddEnergy — the two reconcile at the root
// because spans without a workload class are never priced twice.
func EnergyModel(chip *dvfs.Chip) obs.EnergyModel {
	node := NewNode(chip, 1)
	mount := nfs.DefaultMount()
	return func(class string, bytes int64, elapsed time.Duration) float64 {
		w, ok := workloadForClass(class, bytes, mount, chip)
		if !ok {
			return 0
		}
		return node.RunClean(w, chip.BaseGHz).Joules
	}
}

// workloadForClass maps a span's workload class onto the machine model.
// Unknown classes report ok=false and stay unpriced.
func workloadForClass(class string, bytes int64, mount nfs.Mount, chip *dvfs.Chip) (Workload, bool) {
	if bytes < 0 {
		return Workload{}, false
	}
	const typicalRelEB, typicalRatio = 1e-3, 8
	switch class {
	case "sz.compress", "zfp.compress", "squant.compress":
		codec := class[:len(class)-len(".compress")]
		w, err := CompressionWorkloadWithRatio(codec, bytes, typicalRelEB, typicalRatio, chip)
		return w, err == nil
	case "sz.decompress", "zfp.decompress", "squant.decompress":
		codec := class[:len(class)-len(".decompress")]
		w, err := DecompressionWorkload(codec, bytes, typicalRelEB, typicalRatio, chip)
		return w, err == nil
	case "nfs.write", "nfs.read":
		// Reconstruct the transfer shape from the default mount geometry:
		// ceil(bytes/wsize) RPCs, wire time at link bandwidth. The nfs sim
		// already ran inside the span being priced, so the model must not
		// run it again (that would record new spans while ending this one).
		wsize := int64(mount.WSize)
		if wsize <= 0 {
			wsize = 1 << 20
		}
		rpcs := (bytes + wsize - 1) / wsize
		if rpcs == 0 {
			rpcs = 1
		}
		var netSec float64
		if bw := mount.Link.BandwidthBps; bw > 0 {
			netSec = float64(bytes) * 8 / bw
		}
		return TransitWorkload(nfs.Transfer{
			PayloadBytes:   bytes,
			RPCs:           rpcs,
			NetworkSeconds: netSec,
		}, chip), true
	case "dedup.split":
		w, err := DedupWorkload(bytes, chip)
		return w, err == nil
	case "ec.encode", "ec.reconstruct":
		b := float64(bytes)
		return Workload{
			Kind:         KindCompress,
			Name:         class,
			CPUCycles:    ecCyclesPerByte * b / chip.IPCFactor,
			StallSeconds: ecStallPerByte * b,
			MemBytes:     2 * b,
		}, true
	}
	return Workload{}, false
}
