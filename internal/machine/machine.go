// Package machine models a single CloudLab node executing the paper's two
// workload classes — lossy compression and NFS data writing — at a chosen
// CPU frequency, producing the (energy, runtime) samples that `perf` would
// report on real hardware.
//
// A Workload separates frequency-scaled work (CPU cycles) from
// frequency-independent work (memory stall time, network critical path).
// A Node combines a dvfs.Chip with that split:
//
//	compression:  t(f) = cycles/(f*IPC) + t_mem
//	data writing: t(f) = pnorm(cycles/(f*IPC), t_net) — client CPU overlaps
//	              the wire under the NFS async window, so wall time is a
//	              smooth maximum of the two
//
// and integrates chip power (busy during CPU work, wait-power during
// stalls) plus a DRAM component through a rapl.Meter. Multiplicative
// measurement noise (seeded, deterministic) reproduces run-to-run variance
// so the regression pipeline downstream is exercised realistically.
//
// The per-codec cycle and stall coefficients below are calibration
// constants: they are chosen so the simulated timing shares reproduce the
// paper's measured sensitivities (compression ~ +7.5% runtime at -12.5%
// frequency; data writing ~ +9.3% at -15%, nearly flat on Skylake), as
// documented in DESIGN.md.
package machine

import (
	"fmt"
	"math"

	"lcpio/internal/dvfs"
	"lcpio/internal/netsim"
	"lcpio/internal/nfs"
	"lcpio/internal/rapl"
)

// Kind labels the workload class, which selects the runtime composition.
type Kind int

const (
	// KindCompress is single-core lossy compression: CPU work and memory
	// stalls serialize.
	KindCompress Kind = iota
	// KindTransit is the NFS write path: client CPU work overlaps the
	// network pipeline.
	KindTransit
)

func (k Kind) String() string {
	if k == KindCompress {
		return "compress"
	}
	return "transit"
}

// Workload is chip-specific abstract work.
type Workload struct {
	Kind Kind
	Name string
	// CPUCycles is the frequency-scaled work in core cycles (already
	// adjusted for the chip's IPC).
	CPUCycles float64
	// StallSeconds is frequency-independent time: memory stalls for
	// compression, the network critical path for transit.
	StallSeconds float64
	// MemBytes drives the DRAM energy component.
	MemBytes float64
	// Cores is the parallelism of the CPU-bound part (chunked compression
	// spreads across cores, as the container package does for real).
	// 0 or 1 is the paper's single-core setting.
	Cores int
}

// WithCores returns a copy of the workload spread across n cores — the
// multi-core extension. Cycles split near-ideally across chunk workers;
// a small serial fraction (chunk dispatch, final assembly) remains.
func (w Workload) WithCores(n int) Workload {
	if n < 1 {
		n = 1
	}
	w.Cores = n
	return w
}

// Calibration constants (see package comment).
const (
	// Compression cost model: base cycles and stall seconds per raw byte
	// on the Broadwell reference core (IPCFactor 1.0).
	compressCyclesPerByte = 6.0
	compressStallPerByte  = 2.0e-9

	// Per-codec multipliers: zfp's block transform is cheaper per byte
	// than SZ's prediction+Huffman pipeline; bare scalar quantization is
	// cheaper still.
	szCycleFactor     = 1.00
	zfpCycleFactor    = 0.78
	squantCycleFactor = 0.45
	szStallFactor     = 1.00
	zfpStallFactor    = 0.85
	squantStallFactor = 0.70

	// Finer error bounds quantize into more intervals and emit more bits:
	// cycles grow by this fraction per decade of bound tightening below
	// 1e-1.
	ebCyclePerDecade = 0.08

	// Dedup cost model: content-defined chunking runs a gear rolling hash
	// over every raw byte (~1 cycle/byte: one shift, add, table load, mask
	// test) and a truncated SHA-256 per chunk. SHA-256 runs on the SHA
	// hardware extensions every current server core ships (and Go's
	// crypto/sha256 uses), ~2 cycles/byte. The stream prefetches
	// perfectly, so stalls are far below compression's.
	dedupCyclesPerByte = 3.0
	dedupStallPerByte  = 0.5e-9

	// NFS client write path: cycles per payload byte (copies, checksums,
	// RPC marshalling) and per RPC (syscall, XDR framing) on the
	// reference core.
	writeCyclesPerByte = 1.55
	writeCyclesPerRPC  = 25000.0

	// DRAM power model: idle floor plus active power during stalls.
	dramIdleWatts   = 1.2
	dramActiveWatts = 3.0

	// Measurement noise: relative sigma of multiplicative run-to-run
	// variation, matching the tight 95% CIs in the paper's figures.
	noiseSigma = 0.01
)

// CompressionWorkload characterizes compressing rawBytes with the named
// codec ("sz"/"zfp") at range-relative error bound relEB on the given chip,
// assuming typical compressibility (ratio ~8).
func CompressionWorkload(codec string, rawBytes int64, relEB float64, chip *dvfs.Chip) (Workload, error) {
	return CompressionWorkloadWithRatio(codec, rawBytes, relEB, 8, chip)
}

// CompressionWorkloadWithRatio is CompressionWorkload informed by the
// measured compression ratio of the actual data: harder data (lower ratio)
// produces more quantization outliers and entropy-coding work, costing more
// cycles per byte. The experiment pipeline measures the ratio by running
// the real codec on a scaled field and feeds it here, which is what makes
// datasets distinguishable in the power model.
func CompressionWorkloadWithRatio(codec string, rawBytes int64, relEB, ratio float64, chip *dvfs.Chip) (Workload, error) {
	var cf, sf float64
	switch codec {
	case "sz":
		cf, sf = szCycleFactor, szStallFactor
	case "zfp":
		cf, sf = zfpCycleFactor, zfpStallFactor
	case "squant":
		cf, sf = squantCycleFactor, squantStallFactor
	default:
		return Workload{}, fmt.Errorf("machine: unknown codec %q", codec)
	}
	if rawBytes < 0 {
		return Workload{}, fmt.Errorf("machine: negative size %d", rawBytes)
	}
	ebMult := 1.0
	if relEB > 0 && relEB < 1e-1 {
		ebMult += ebCyclePerDecade * math.Log10(1e-1/relEB)
	}
	// Hard-to-compress data costs more entropy-coding work: up to ~25%
	// extra cycles as the ratio approaches 1, vanishing for very
	// compressible fields.
	ratioMult := 1.0
	if ratio > 0 && !math.IsInf(ratio, 0) {
		ratioMult += 0.5 / (1 + ratio)
	}
	b := float64(rawBytes)
	return Workload{
		Kind:         KindCompress,
		Name:         fmt.Sprintf("%s-compress-%g", codec, relEB),
		CPUCycles:    compressCyclesPerByte * cf * ebMult * ratioMult * b / chip.IPCFactor,
		StallSeconds: compressStallPerByte * sf * b,
		MemBytes:     3 * b, // read input, write output, working set traffic
	}, nil
}

// DecompressionWorkload characterizes reconstructing rawBytes of output
// with the named codec. Decompression skips prediction search and Huffman
// table construction, so it runs at a fraction of compression's cycle
// cost — the standard SZ/ZFP asymmetry.
func DecompressionWorkload(codec string, rawBytes int64, relEB, ratio float64, chip *dvfs.Chip) (Workload, error) {
	w, err := CompressionWorkloadWithRatio(codec, rawBytes, relEB, ratio, chip)
	if err != nil {
		return Workload{}, err
	}
	const decompressCycleFraction = 0.55
	w.Name = fmt.Sprintf("%s-decompress-%g", codec, relEB)
	w.CPUCycles *= decompressCycleFraction
	return w, nil
}

// TransitWorkload characterizes pushing a completed nfs.Transfer from the
// client on the given chip.
func TransitWorkload(tr nfs.Transfer, chip *dvfs.Chip) Workload {
	cycles := (writeCyclesPerByte*float64(tr.PayloadBytes) +
		writeCyclesPerRPC*float64(tr.RPCs)) / chip.IPCFactor
	return Workload{
		Kind:         KindTransit,
		Name:         fmt.Sprintf("write-%dB", tr.PayloadBytes),
		CPUCycles:    cycles,
		StallSeconds: tr.NetworkSeconds,
		MemBytes:     2 * float64(tr.PayloadBytes),
	}
}

// linkSegmentBytes is the socket-write granularity of the in-transit send
// path: one send() (copies, checksums, framing) per 64 KiB segment.
const linkSegmentBytes = 64 << 10

// LinkTransitWorkload characterizes pushing payloadBytes through a bare
// netsim link — the in-transit compression send leg, which has no NFS
// window in front of it. Client cycles follow the same per-byte and per-RPC
// coefficients as the NFS write path; the frequency-independent part is the
// link's serialization plus latency.
func LinkTransitWorkload(payloadBytes int64, link netsim.Link, chip *dvfs.Chip) Workload {
	if payloadBytes < 0 {
		payloadBytes = 0
	}
	rpcs := (payloadBytes + linkSegmentBytes - 1) / linkSegmentBytes
	if rpcs < 1 {
		rpcs = 1
	}
	return TransitWorkload(nfs.Transfer{
		PayloadBytes:   payloadBytes,
		RPCs:           rpcs,
		NetworkSeconds: link.MessageTime(payloadBytes),
	}, chip)
}

// DedupWorkload characterizes the delta-checkpoint dedup pass (ckpt format
// v3): a gear rolling hash over every raw byte, content-defined boundary
// tests, and a truncated SHA-256 digest per chunk. It is frequency-scaled
// CPU work like compression (KindCompress) with a light stall component —
// the pass streams sequentially and prefetches well.
func DedupWorkload(rawBytes int64, chip *dvfs.Chip) (Workload, error) {
	if rawBytes < 0 {
		return Workload{}, fmt.Errorf("machine: negative size %d", rawBytes)
	}
	b := float64(rawBytes)
	return Workload{
		Kind:         KindCompress,
		Name:         fmt.Sprintf("dedup-chunk-%dB", rawBytes),
		CPUCycles:    dedupCyclesPerByte * b / chip.IPCFactor,
		StallSeconds: dedupStallPerByte * b,
		MemBytes:     b, // one streaming read of the raw payload
	}, nil
}

// Sample is one measured run, the unit the sweep harness collects.
type Sample struct {
	FreqGHz  float64
	Seconds  float64
	Joules   float64
	AvgWatts float64
	CPUBusy  float64 // seconds the core spent in frequency-scaled work
	Report   rapl.Report
}

// Node is a simulated host.
type Node struct {
	Chip *dvfs.Chip
	rng  *noiseSource
}

// NewNode creates a node around chip with a seeded noise source; the same
// seed reproduces the same measurement noise sequence.
func NewNode(chip *dvfs.Chip, seed int64) *Node {
	return &Node{Chip: chip, rng: newNoiseSource(uint64(seed))}
}

// Run executes w at frequency f (snapped to the P-state grid) and returns
// the noisy measurement. Deterministic given the node's noise state.
func (n *Node) Run(w Workload, f float64) Sample {
	s := n.runClean(w, f)
	// Multiplicative noise, correlated between time and energy the way
	// real thermal/background variation is.
	tn := 1 + noiseSigma*n.rng.normal()
	en := 1 + noiseSigma*(0.6*n.rng.normal()+0.4*(tn-1)/noiseSigma)
	s.Seconds *= tn
	s.Joules *= en
	if s.Seconds > 0 {
		s.AvgWatts = s.Joules / s.Seconds
	}
	return s
}

// RunClean executes w at frequency f without measurement noise — the
// model's ground truth, used by the optimizer and in tests.
func (n *Node) RunClean(w Workload, f float64) Sample { return n.runClean(w, f) }

// serialFraction is the Amdahl serial share of multi-core compression
// (chunk dispatch, container assembly).
const serialFraction = 0.03

func (n *Node) runClean(w Workload, f float64) Sample {
	chip := n.Chip
	f = chip.ClampFreq(f)
	cpuSec := w.CPUCycles / (f * 1e9)
	cores := w.Cores
	if cores < 1 {
		cores = 1
	}
	if cores > 1 {
		cpuSec = cpuSec*serialFraction + cpuSec*(1-serialFraction)/float64(cores)
	}

	var total, busy, waitPower float64
	switch w.Kind {
	case KindCompress:
		// Serial composition: predict/quantize bursts then stall on the
		// next cache-missing region.
		busy = cpuSec
		total = cpuSec + w.StallSeconds
		waitPower = chip.MemWaitPower(f)
	default:
		// Client CPU overlaps the NFS pipeline; a smooth p-norm maximum
		// models the imperfect overlap of a bounded async window.
		busy = cpuSec
		total = pnorm3(cpuSec, w.StallSeconds)
		waitPower = chip.IOWaitPower(f)
	}
	wait := total - busy
	if wait < 0 {
		wait = 0
	}

	var m rapl.Meter
	sess := rapl.Start(&m)
	busyPower := chip.BusyPower(f)
	if cores > 1 {
		busyPower = chip.PowerN(f, cores, 1)
	}
	m.AddPhase(rapl.Package, busyPower, busy)
	m.AddPhase(rapl.Package, waitPower, wait)
	m.AddPhase(rapl.DRAM, dramIdleWatts, total)
	// Active DRAM power during the stall/transfer phases.
	m.AddPhase(rapl.DRAM, dramActiveWatts-dramIdleWatts, wait)
	rep := sess.Stop()

	return Sample{
		FreqGHz:  f,
		Seconds:  rep.Seconds,
		Joules:   rep.TotalJoules(),
		AvgWatts: rep.AvgPowerWatts(),
		CPUBusy:  busy,
		Report:   rep,
	}
}

// pnorm3 is a smooth maximum: (a^3 + b^3)^(1/3).
func pnorm3(a, b float64) float64 {
	return math.Cbrt(a*a*a + b*b*b)
}

// --- deterministic noise -----------------------------------------------------

type noiseSource struct{ s0, s1 uint64 }

func newNoiseSource(seed uint64) *noiseSource {
	if seed == 0 {
		seed = 0x1234567890ABCDEF
	}
	n := &noiseSource{s0: seed, s1: seed ^ 0x9E3779B97F4A7C15}
	for i := 0; i < 8; i++ {
		n.next()
	}
	return n
}

func (n *noiseSource) next() uint64 {
	a, b := n.s0, n.s1
	n.s0 = b
	a ^= a << 23
	a ^= a >> 17
	a ^= b ^ (b >> 26)
	n.s1 = a
	return a + b
}

func (n *noiseSource) float() float64 {
	return float64(n.next()>>11) / (1 << 53)
}

func (n *noiseSource) normal() float64 {
	u1 := n.float()
	for u1 == 0 {
		u1 = n.float()
	}
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*n.float())
}
