package machine

import (
	"testing"
	"time"

	"lcpio/internal/dvfs"
)

func TestEnergyModelPricesKnownClasses(t *testing.T) {
	model := EnergyModel(dvfs.Broadwell())
	const mb = 1 << 20
	for _, class := range []string{
		"sz.compress", "zfp.compress", "squant.compress",
		"sz.decompress", "zfp.decompress", "squant.decompress",
		"nfs.write", "nfs.read",
		"dedup.split",
		"ec.encode", "ec.reconstruct",
	} {
		j := model(class, mb, 10*time.Millisecond)
		if j <= 0 {
			t.Errorf("class %q priced at %v J for 1 MiB, want > 0", class, j)
		}
		// Pricing must scale with bytes.
		if j2 := model(class, 4*mb, 10*time.Millisecond); j2 <= j {
			t.Errorf("class %q: 4 MiB priced %v <= 1 MiB %v", class, j2, j)
		}
	}
}

func TestEnergyModelUnknownAndDegenerate(t *testing.T) {
	model := EnergyModel(dvfs.Broadwell())
	if j := model("mystery.phase", 1<<20, time.Millisecond); j != 0 {
		t.Fatalf("unknown class priced at %v J, want 0", j)
	}
	if j := model("sz.compress", -1, time.Millisecond); j != 0 {
		t.Fatalf("negative bytes priced at %v J, want 0", j)
	}
	// Zero bytes must not panic (nfs.write builds at least one RPC).
	if j := model("nfs.write", 0, time.Millisecond); j < 0 {
		t.Fatalf("zero-byte transfer priced at %v J", j)
	}
}

// TestEnergyModelAgreesWithPhaseWorkloads pins the span-pricing path to the
// same Eqn 2 arithmetic the campaign planner uses: pricing an sz.compress
// span must equal running the equivalent compression workload at base clock.
func TestEnergyModelAgreesWithPhaseWorkloads(t *testing.T) {
	chip := dvfs.Broadwell()
	model := EnergyModel(chip)
	const bytes = 8 << 20
	w, err := CompressionWorkloadWithRatio("sz", bytes, 1e-3, 8, chip)
	if err != nil {
		t.Fatal(err)
	}
	want := NewNode(chip, 1).RunClean(w, chip.BaseGHz).Joules
	got := model("sz.compress", bytes, time.Second)
	if got != want {
		t.Fatalf("span pricing %v J != workload pricing %v J", got, want)
	}
}
