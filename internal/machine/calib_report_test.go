package machine

import (
	"testing"

	"lcpio/internal/dvfs"
	"lcpio/internal/nfs"
)

// TestCalibrationReport logs the headline sensitivities so calibration
// drift is visible in -v output; assertions live in the sibling tests.
func TestCalibrationReport(t *testing.T) {
	tr := nfs.DefaultMount().Write(4 << 30)
	for _, chip := range dvfs.Chips() {
		n := NewNode(chip, 1)
		cw, _ := CompressionWorkload("sz", 1<<30, 1e-3, chip)
		cb := n.RunClean(cw, chip.BaseGHz)
		ct := n.RunClean(cw, 0.875*chip.BaseGHz)
		cf := n.RunClean(cw, chip.MinGHz)
		ww := TransitWorkload(tr, chip)
		wb := n.RunClean(ww, chip.BaseGHz)
		wt := n.RunClean(ww, 0.85*chip.BaseGHz)
		wf := n.RunClean(ww, chip.MinGHz)
		t.Logf("%s compress: dP=%.1f%% dt=%.1f%% dE=%.1f%% floorP=%.2f",
			chip.Series, 100*(1-ct.AvgWatts/cb.AvgWatts), 100*(ct.Seconds/cb.Seconds-1),
			100*(1-ct.Joules/cb.Joules), cf.AvgWatts/cb.AvgWatts)
		t.Logf("%s transit:  dP=%.1f%% dt=%.1f%% dE=%.1f%% floorP=%.2f",
			chip.Series, 100*(1-wt.AvgWatts/wb.AvgWatts), 100*(wt.Seconds/wb.Seconds-1),
			100*(1-wt.Joules/wb.Joules), wf.AvgWatts/wb.AvgWatts)
	}
}
