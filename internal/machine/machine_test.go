package machine

import (
	"math"
	"testing"

	"lcpio/internal/dvfs"
	"lcpio/internal/nfs"
)

func compressWL(t *testing.T, chip *dvfs.Chip, codec string, relEB float64) Workload {
	t.Helper()
	w, err := CompressionWorkload(codec, 1<<30, relEB, chip)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestCompressionWorkloadValidation(t *testing.T) {
	bw := dvfs.Broadwell()
	if _, err := CompressionWorkload("lz4", 100, 1e-3, bw); err == nil {
		t.Error("unknown codec accepted")
	}
	if _, err := CompressionWorkload("sz", -1, 1e-3, bw); err == nil {
		t.Error("negative size accepted")
	}
	w, err := CompressionWorkload("sz", 0, 1e-3, bw)
	if err != nil || w.CPUCycles != 0 {
		t.Errorf("zero-size workload: %+v err %v", w, err)
	}
}

func TestFinerBoundCostsMoreCycles(t *testing.T) {
	bw := dvfs.Broadwell()
	coarse := compressWL(t, bw, "sz", 1e-1)
	fine := compressWL(t, bw, "sz", 1e-4)
	if fine.CPUCycles <= coarse.CPUCycles {
		t.Errorf("finer bound should cost more cycles: %g vs %g", fine.CPUCycles, coarse.CPUCycles)
	}
}

func TestZFPCheaperThanSZ(t *testing.T) {
	bw := dvfs.Broadwell()
	sz := compressWL(t, bw, "sz", 1e-3)
	zf := compressWL(t, bw, "zfp", 1e-3)
	if zf.CPUCycles >= sz.CPUCycles {
		t.Errorf("zfp should be cheaper: %g vs %g", zf.CPUCycles, sz.CPUCycles)
	}
}

func TestSkylakeIPCAdvantage(t *testing.T) {
	bwW := compressWL(t, dvfs.Broadwell(), "sz", 1e-3)
	skW := compressWL(t, dvfs.Skylake(), "sz", 1e-3)
	if skW.CPUCycles >= bwW.CPUCycles {
		t.Errorf("Skylake should need fewer cycles: %g vs %g", skW.CPUCycles, bwW.CPUCycles)
	}
}

func TestRunCleanDeterministic(t *testing.T) {
	bw := dvfs.Broadwell()
	w := compressWL(t, bw, "sz", 1e-3)
	n := NewNode(bw, 1)
	a := n.RunClean(w, 1.5)
	b := n.RunClean(w, 1.5)
	if a != b {
		t.Fatalf("RunClean not deterministic: %+v vs %+v", a, b)
	}
	if a.Seconds <= 0 || a.Joules <= 0 || a.AvgWatts <= 0 {
		t.Fatalf("degenerate sample: %+v", a)
	}
}

func TestRunNoiseIsSmallAndSeeded(t *testing.T) {
	bw := dvfs.Broadwell()
	w := compressWL(t, bw, "sz", 1e-3)
	clean := NewNode(bw, 7).RunClean(w, 2.0)
	n1 := NewNode(bw, 7)
	n2 := NewNode(bw, 7)
	for i := 0; i < 50; i++ {
		s1 := n1.Run(w, 2.0)
		s2 := n2.Run(w, 2.0)
		if s1 != s2 {
			t.Fatal("same seed must give identical noise")
		}
		if rel := math.Abs(s1.Seconds-clean.Seconds) / clean.Seconds; rel > 0.08 {
			t.Fatalf("noise too large: %.3f relative", rel)
		}
	}
}

func TestRuntimeDecreasesWithFrequency(t *testing.T) {
	for _, chip := range dvfs.Chips() {
		n := NewNode(chip, 1)
		w := compressWL(t, chip, "sz", 1e-3)
		prev := math.Inf(1)
		for _, f := range chip.Frequencies() {
			s := n.RunClean(w, f)
			if s.Seconds >= prev {
				t.Fatalf("%s: runtime not decreasing at %v GHz", chip.Series, f)
			}
			prev = s.Seconds
		}
	}
}

func TestEnergyRuntimePowerConsistent(t *testing.T) {
	chip := dvfs.Skylake()
	n := NewNode(chip, 3)
	w := compressWL(t, chip, "zfp", 1e-2)
	s := n.RunClean(w, 1.8)
	if math.Abs(s.AvgWatts*s.Seconds-s.Joules) > 1e-6*s.Joules {
		t.Fatalf("E != P*t: %v * %v != %v", s.AvgWatts, s.Seconds, s.Joules)
	}
	if s.Report.PackageJoules <= s.Report.DRAMJoules {
		t.Fatalf("package energy should dominate DRAM: %+v", s.Report)
	}
}

// Calibration: compression runtime increase at the paper's tuned frequency
// (0.875 f_max) should sit near the paper's +7.5% (Section V-A3).
func TestCalibrationCompressionRuntime(t *testing.T) {
	var total float64
	for _, chip := range dvfs.Chips() {
		n := NewNode(chip, 1)
		w := compressWL(t, chip, "sz", 1e-3)
		base := n.RunClean(w, chip.BaseGHz)
		tuned := n.RunClean(w, 0.875*chip.BaseGHz)
		inc := tuned.Seconds/base.Seconds - 1
		if inc < 0.03 || inc > 0.14 {
			t.Errorf("%s: compression runtime increase %.1f%% outside [3,14]%%", chip.Series, inc*100)
		}
		total += inc
	}
	if avg := total / 2; avg < 0.05 || avg > 0.12 {
		t.Errorf("average compression runtime increase %.1f%% not near the paper's 7.5%%", avg*100)
	}
}

// Calibration: compression power savings at 0.875 f_max should land in the
// regime of the paper's fitted models (Broadwell ~13%, Skylake ~20%).
func TestCalibrationCompressionPower(t *testing.T) {
	savings := map[string]float64{}
	for _, chip := range dvfs.Chips() {
		n := NewNode(chip, 1)
		w := compressWL(t, chip, "sz", 1e-3)
		base := n.RunClean(w, chip.BaseGHz)
		tuned := n.RunClean(w, 0.875*chip.BaseGHz)
		savings[chip.Series] = 1 - tuned.AvgWatts/base.AvgWatts
	}
	if s := savings["Broadwell"]; s < 0.06 || s > 0.22 {
		t.Errorf("Broadwell compression power savings %.1f%% outside [6,22]%%", s*100)
	}
	if s := savings["Skylake"]; s < 0.10 || s > 0.30 {
		t.Errorf("Skylake compression power savings %.1f%% outside [10,30]%%", s*100)
	}
	if savings["Skylake"] <= savings["Broadwell"] {
		t.Errorf("Skylake knee should yield larger savings at -12.5%%: %v", savings)
	}
}

// Calibration: data-transit runtime at 0.85 f_max — Broadwell rises
// noticeably, Skylake stays nearly flat (the paper's stagnant Skylake
// writes), averaging near the paper's +9.3%.
func TestCalibrationTransitRuntime(t *testing.T) {
	tr := nfs.DefaultMount().Write(4 << 30)
	inc := map[string]float64{}
	for _, chip := range dvfs.Chips() {
		n := NewNode(chip, 1)
		w := TransitWorkload(tr, chip)
		base := n.RunClean(w, chip.BaseGHz)
		tuned := n.RunClean(w, 0.85*chip.BaseGHz)
		inc[chip.Series] = tuned.Seconds/base.Seconds - 1
	}
	if v := inc["Broadwell"]; v < 0.04 || v > 0.18 {
		t.Errorf("Broadwell transit runtime increase %.1f%% outside [4,18]%%", v*100)
	}
	if v := inc["Skylake"]; v < 0 || v > 0.09 {
		t.Errorf("Skylake transit runtime increase %.1f%% should be nearly flat", v*100)
	}
	if inc["Skylake"] >= inc["Broadwell"] {
		t.Errorf("Skylake transit runtime should be flatter than Broadwell: %v", inc)
	}
}

// Calibration: data-transit power savings at 0.85 f_max near the paper's
// 11.2%, and transit's scaled-power floor above compression's (Fig 3 vs 1).
func TestCalibrationTransitPower(t *testing.T) {
	tr := nfs.DefaultMount().Write(4 << 30)
	var totalSavings float64
	for _, chip := range dvfs.Chips() {
		n := NewNode(chip, 1)
		w := TransitWorkload(tr, chip)
		base := n.RunClean(w, chip.BaseGHz)
		tuned := n.RunClean(w, 0.85*chip.BaseGHz)
		s := 1 - tuned.AvgWatts/base.AvgWatts
		if s < 0.04 || s > 0.30 {
			t.Errorf("%s transit power savings %.1f%% outside [4,30]%%", chip.Series, s*100)
		}
		totalSavings += s
	}
	if avg := totalSavings / 2; avg < 0.06 || avg > 0.25 {
		t.Errorf("average transit power savings %.1f%% not near the paper's 11.2%%", avg*100)
	}
}

// The tuned point must save net energy for compression (power drops faster
// than runtime rises) — the premise of the whole paper.
func TestTunedPointSavesEnergy(t *testing.T) {
	for _, chip := range dvfs.Chips() {
		n := NewNode(chip, 1)
		w := compressWL(t, chip, "sz", 1e-3)
		base := n.RunClean(w, chip.BaseGHz)
		tuned := n.RunClean(w, 0.875*chip.BaseGHz)
		if tuned.Joules >= base.Joules {
			t.Errorf("%s: tuned energy %.1f J not below base %.1f J",
				chip.Series, tuned.Joules, base.Joules)
		}
	}
}

func TestTransitWorkloadScalesWithBytes(t *testing.T) {
	chip := dvfs.Broadwell()
	small := TransitWorkload(nfs.DefaultMount().Write(1<<20), chip)
	big := TransitWorkload(nfs.DefaultMount().Write(1<<30), chip)
	if big.CPUCycles <= small.CPUCycles || big.StallSeconds <= small.StallSeconds {
		t.Fatalf("transit workload not scaling: %+v vs %+v", small, big)
	}
}

func TestKindString(t *testing.T) {
	if KindCompress.String() != "compress" || KindTransit.String() != "transit" {
		t.Fatal("Kind names")
	}
}

func TestPnorm3(t *testing.T) {
	if v := pnorm3(3, 0); math.Abs(v-3) > 1e-12 {
		t.Fatalf("pnorm3(3,0) = %v", v)
	}
	if v := pnorm3(0, 4); math.Abs(v-4) > 1e-12 {
		t.Fatalf("pnorm3(0,4) = %v", v)
	}
	v := pnorm3(1, 1)
	if v <= 1 || v >= 2 {
		t.Fatalf("pnorm3(1,1) = %v, want in (1,2)", v)
	}
}

func BenchmarkRunClean(b *testing.B) {
	chip := dvfs.Skylake()
	n := NewNode(chip, 1)
	w, err := CompressionWorkload("sz", 1<<30, 1e-3, chip)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		n.RunClean(w, 1.6)
	}
}

func TestDecompressionCheaperThanCompression(t *testing.T) {
	chip := dvfs.Broadwell()
	cw, err := CompressionWorkloadWithRatio("sz", 1<<30, 1e-3, 8, chip)
	if err != nil {
		t.Fatal(err)
	}
	dw, err := DecompressionWorkload("sz", 1<<30, 1e-3, 8, chip)
	if err != nil {
		t.Fatal(err)
	}
	if dw.CPUCycles >= cw.CPUCycles {
		t.Fatalf("decompression cycles %g not below compression %g", dw.CPUCycles, cw.CPUCycles)
	}
	if dw.StallSeconds != cw.StallSeconds {
		t.Fatalf("decompression stalls changed: %g vs %g", dw.StallSeconds, cw.StallSeconds)
	}
	if _, err := DecompressionWorkload("nope", 1, 1e-3, 8, chip); err == nil {
		t.Fatal("unknown codec accepted")
	}
}

func TestHarderDataCostsMoreCycles(t *testing.T) {
	chip := dvfs.Broadwell()
	easy, err := CompressionWorkloadWithRatio("sz", 1<<30, 1e-3, 50, chip)
	if err != nil {
		t.Fatal(err)
	}
	hard, err := CompressionWorkloadWithRatio("sz", 1<<30, 1e-3, 1.5, chip)
	if err != nil {
		t.Fatal(err)
	}
	if hard.CPUCycles <= easy.CPUCycles {
		t.Fatalf("hard data (ratio 1.5) should cost more than easy (ratio 50): %g vs %g",
			hard.CPUCycles, easy.CPUCycles)
	}
}

func TestMultiCoreScaling(t *testing.T) {
	chip := dvfs.Skylake()
	node := NewNode(chip, 1)
	w, err := CompressionWorkloadWithRatio("sz", 8<<30, 1e-3, 9, chip)
	if err != nil {
		t.Fatal(err)
	}
	single := node.RunClean(w, chip.BaseGHz)
	quad := node.RunClean(w.WithCores(4), chip.BaseGHz)
	// Near-linear speedup of the CPU part, bounded by the serial fraction
	// and the frequency-independent stalls.
	if quad.Seconds >= single.Seconds {
		t.Fatalf("4 cores not faster: %.2f vs %.2f", quad.Seconds, single.Seconds)
	}
	if quad.Seconds < single.Seconds/4 {
		t.Fatalf("superlinear speedup: %.2f vs %.2f", quad.Seconds, single.Seconds)
	}
	// Average power rises with active cores.
	if quad.AvgWatts <= single.AvgWatts {
		t.Fatalf("4-core power %.1f not above single-core %.1f", quad.AvgWatts, single.AvgWatts)
	}
}

func TestMultiCoreEnergyTradeoff(t *testing.T) {
	// Static power amortizes over shorter runs: parallel compression
	// should cost LESS total energy than single core at the same
	// frequency (race-to-idle within the job), with diminishing returns.
	chip := dvfs.Broadwell()
	node := NewNode(chip, 1)
	w, err := CompressionWorkloadWithRatio("sz", 8<<30, 1e-3, 9, chip)
	if err != nil {
		t.Fatal(err)
	}
	e1 := node.RunClean(w, chip.BaseGHz).Joules
	e4 := node.RunClean(w.WithCores(4), chip.BaseGHz).Joules
	if e4 >= e1 {
		t.Fatalf("4-core energy %.0f not below single-core %.0f (static should amortize)", e4, e1)
	}
}

func TestWithCoresClamps(t *testing.T) {
	w := Workload{CPUCycles: 100}
	if w.WithCores(0).Cores != 1 || w.WithCores(-3).Cores != 1 {
		t.Fatal("WithCores must clamp to 1")
	}
	if w.Cores != 0 {
		t.Fatal("WithCores must not mutate the receiver")
	}
}
