// Package huffman implements a canonical Huffman coder over integer symbol
// alphabets. It is the entropy-coding stage for the sz codec's quantization
// codes and the literal/length coder inside the lossless backend.
//
// Code construction uses the standard two-queue algorithm over a heap of
// symbol frequencies, followed by canonicalization (codes assigned in
// (length, symbol) order) so that only the code lengths need to be stored in
// a compressed stream header.
package huffman

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"lcpio/internal/bitstream"
)

// MaxCodeLen is the longest code length the coder will produce. Frequencies
// are flattened if the natural tree would exceed it, which keeps the decode
// table small and bounds worst-case compressed size.
const MaxCodeLen = 32

var (
	// ErrNoSymbols is returned when building a code over an empty alphabet.
	ErrNoSymbols = errors.New("huffman: no symbols with nonzero frequency")
	// ErrBadLengths is returned when a set of code lengths does not describe
	// a valid (complete or over-subscribed-free) prefix code.
	ErrBadLengths = errors.New("huffman: invalid code length set")
	// ErrCorrupt is returned when decoding encounters a code not present in
	// the table.
	ErrCorrupt = errors.New("huffman: corrupt stream")
)

// Code is a canonical Huffman code over symbols [0, NumSymbols).
type Code struct {
	lens  []uint8  // code length per symbol; 0 = unused
	codes []uint32 // canonical code per symbol, MSB-first

	// Decoding acceleration: first code and first symbol index per length.
	firstCode  [MaxCodeLen + 2]uint32
	firstSym   [MaxCodeLen + 2]int32
	symsByCode []int32 // symbols sorted by (len, symbol)
	maxLen     uint8

	// Direct-lookup decode table, built lazily on the first DecodeAll:
	// indexing by the next lutBits bits of the stream yields the symbol and
	// its code length for every code no longer than lutBits. Longer codes
	// fall back to the per-bit canonical walk.
	lutBits uint8
	lutLen  []uint8
	lutSym  []int32
}

type hnode struct {
	freq        uint64
	sym         int32 // -1 for internal
	left, right int32 // indices into node arena
	depth       int32 // tie-break: prefer shallow trees
}

// hheap is a min-heap of arena indices ordered by (freq, depth). It is
// implemented directly on int32 indices rather than through container/heap:
// the interface{}-based Push/Pop there boxes every index above 255, which
// costs an allocation per heap operation — thousands per Build on wide
// alphabets, and the dominant term in the codecs' steady-state allocs.
type hheap struct {
	arena []hnode
	idx   []int32
}

func (h *hheap) less(i, j int) bool {
	a, b := h.arena[h.idx[i]], h.arena[h.idx[j]]
	if a.freq != b.freq {
		return a.freq < b.freq
	}
	return a.depth < b.depth
}

func (h *hheap) push(v int32) {
	h.idx = append(h.idx, v)
	i := len(h.idx) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.idx[i], h.idx[parent] = h.idx[parent], h.idx[i]
		i = parent
	}
}

func (h *hheap) pop() int32 {
	v := h.idx[0]
	n := len(h.idx) - 1
	h.idx[0] = h.idx[n]
	h.idx = h.idx[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && h.less(l, min) {
			min = l
		}
		if r < n && h.less(r, min) {
			min = r
		}
		if min == i {
			break
		}
		h.idx[i], h.idx[min] = h.idx[min], h.idx[i]
		i = min
	}
	return v
}

// init heapifies idx in place.
func (h *hheap) heapify() {
	n := len(h.idx)
	for i := n/2 - 1; i >= 0; i-- {
		// sift down from i
		j := i
		for {
			l, r := 2*j+1, 2*j+2
			min := j
			if l < n && h.less(l, min) {
				min = l
			}
			if r < n && h.less(r, min) {
				min = r
			}
			if min == j {
				break
			}
			h.idx[j], h.idx[min] = h.idx[min], h.idx[j]
			j = min
		}
	}
}

// Build constructs a canonical Huffman code from symbol frequencies.
// freqs[i] is the frequency of symbol i; zero-frequency symbols get no code.
// At least one symbol must have nonzero frequency. If exactly one symbol is
// used it is assigned a 1-bit code.
func Build(freqs []uint64) (*Code, error) {
	var b Builder
	return b.Build(freqs)
}

// Builder constructs canonical Huffman codes while reusing the heap arena,
// length scratch, and the resulting Code's tables across calls. The zero
// value is ready to use. A Builder is not safe for concurrent use; the *Code
// returned by Build is only valid until the next Build call on the same
// Builder.
type Builder struct {
	heap  hheap
	lens  []uint8
	stack []hframe
	code  Code
}

// hframe is one pending node in the iterative depth-assignment walk.
type hframe struct {
	node  int32
	depth uint8
}

// Build is the reusable-scratch equivalent of the package-level Build. The
// returned Code aliases the Builder's internal storage.
func (b *Builder) Build(freqs []uint64) (*Code, error) {
	n := len(freqs)
	if cap(b.lens) < n {
		b.lens = make([]uint8, n)
	}
	lens := b.lens[:n]
	clear(lens)
	used := 0
	for _, f := range freqs {
		if f > 0 {
			used++
		}
	}
	if used == 0 {
		return nil, ErrNoSymbols
	}
	if used == 1 {
		for i, f := range freqs {
			if f > 0 {
				lens[i] = 1
			}
		}
		if err := b.code.initFrom(lens); err != nil {
			return nil, err
		}
		return &b.code, nil
	}

	h := &b.heap
	h.arena = h.arena[:0]
	h.idx = h.idx[:0]
	for i, f := range freqs {
		if f > 0 {
			h.arena = append(h.arena, hnode{freq: f, sym: int32(i), left: -1, right: -1})
			h.idx = append(h.idx, int32(len(h.arena)-1))
		}
	}
	h.heapify()
	for len(h.idx) > 1 {
		a := h.pop()
		b := h.pop()
		d := h.arena[a].depth
		if h.arena[b].depth > d {
			d = h.arena[b].depth
		}
		h.arena = append(h.arena, hnode{
			freq: h.arena[a].freq + h.arena[b].freq,
			sym:  -1, left: a, right: b, depth: d + 1,
		})
		h.push(int32(len(h.arena) - 1))
	}
	root := h.idx[0]

	// Depth-first assignment of lengths (iterative to avoid recursion limits
	// on degenerate frequency distributions).
	stack := append(b.stack[:0], hframe{root, 0})
	overflow := false
	for len(stack) > 0 {
		fr := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nd := h.arena[fr.node]
		if nd.sym >= 0 {
			d := fr.depth
			if d == 0 {
				d = 1
			}
			if d > MaxCodeLen {
				overflow = true
				d = MaxCodeLen
			}
			lens[nd.sym] = d
			continue
		}
		stack = append(stack, hframe{nd.left, fr.depth + 1}, hframe{nd.right, fr.depth + 1})
	}
	b.stack = stack[:0]
	if overflow {
		flattenLengths(lens)
	}
	if err := b.code.initFrom(lens); err != nil {
		return nil, err
	}
	return &b.code, nil
}

// flattenLengths repairs a length set whose Kraft sum exceeds 1 after
// clamping, by repeatedly lengthening the shortest over-represented codes.
// This mirrors the length-limited repair used by deflate encoders.
func flattenLengths(lens []uint8) {
	for {
		var kraft uint64 // scaled by 1<<MaxCodeLen
		for _, l := range lens {
			if l > 0 {
				kraft += 1 << (MaxCodeLen - l)
			}
		}
		if kraft <= 1<<MaxCodeLen {
			return
		}
		// Lengthen the longest code shorter than MaxCodeLen.
		best := -1
		for i, l := range lens {
			if l > 0 && l < MaxCodeLen && (best < 0 || l > lens[best]) {
				best = i
			}
		}
		if best < 0 {
			return // cannot repair; FromLengths will reject
		}
		lens[best]++
	}
}

// FromLengths constructs the canonical code implied by per-symbol code
// lengths (0 meaning the symbol is unused). The lengths must satisfy the
// Kraft inequality.
func FromLengths(lens []uint8) (*Code, error) {
	c := &Code{}
	if err := c.initFrom(lens); err != nil {
		return nil, err
	}
	return c, nil
}

// initFrom (re)initializes c as the canonical code implied by lens, reusing
// c's existing table storage where capacity allows. lens is copied.
func (c *Code) initFrom(lens []uint8) error {
	var counts [MaxCodeLen + 2]uint32
	maxLen := uint8(0)
	used := 0
	for _, l := range lens {
		if l == 0 {
			continue
		}
		if l > MaxCodeLen {
			return ErrBadLengths
		}
		counts[l]++
		used++
		if l > maxLen {
			maxLen = l
		}
	}
	if used == 0 {
		return ErrNoSymbols
	}
	// Kraft check.
	var kraft uint64
	for l := 1; l <= int(maxLen); l++ {
		kraft += uint64(counts[l]) << (MaxCodeLen - l)
	}
	if kraft > 1<<MaxCodeLen {
		return ErrBadLengths
	}

	// Validation passed: reset all derived state before rebuilding.
	c.maxLen = maxLen
	c.lens = append(c.lens[:0], lens...)
	c.firstCode = [MaxCodeLen + 2]uint32{}
	c.firstSym = [MaxCodeLen + 2]int32{}
	if cap(c.codes) < len(lens) {
		c.codes = make([]uint32, len(lens))
	} else {
		c.codes = c.codes[:len(lens)]
		clear(c.codes)
	}
	c.symsByCode = c.symsByCode[:0]
	c.lutBits = 0
	c.lutLen = c.lutLen[:0]
	c.lutSym = c.lutSym[:0]

	// Canonical first-code per length: codes of length l start where the
	// doubled cumulative count of shorter codes leaves off.
	var code uint32
	var next [MaxCodeLen + 2]uint32
	for l := uint8(1); l <= c.maxLen; l++ {
		c.firstCode[l] = code
		next[l] = code
		code = (code + counts[l]) << 1
	}

	// Assign codes in (length, symbol) order; build symsByCode for decode.
	// One pass over the symbols suffices: for a fixed length, symbols appear
	// in increasing order, which is exactly the canonical tie-break, so each
	// symbol lands at its length's running slot cursor.
	var symIdx int32
	var slot [MaxCodeLen + 2]int32
	for l := uint8(1); l <= c.maxLen; l++ {
		c.firstSym[l] = symIdx
		slot[l] = symIdx
		symIdx += int32(counts[l])
	}
	c.firstSym[c.maxLen+1] = symIdx
	if cap(c.symsByCode) < int(symIdx) {
		c.symsByCode = make([]int32, symIdx)
	} else {
		c.symsByCode = c.symsByCode[:symIdx]
	}
	for s, sl := range lens {
		if sl == 0 {
			continue
		}
		c.codes[s] = next[sl]
		next[sl]++
		c.symsByCode[slot[sl]] = int32(s)
		slot[sl]++
	}
	return nil
}

// NumSymbols reports the alphabet size the code was built over.
func (c *Code) NumSymbols() int { return len(c.lens) }

// Lengths returns the per-symbol code lengths (shared; do not mutate).
func (c *Code) Lengths() []uint8 { return c.lens }

// MaxLen reports the longest assigned code length.
func (c *Code) MaxLen() uint8 { return c.maxLen }

// EncodedBits reports the number of bits symbol s encodes to, or 0 if the
// symbol has no code.
func (c *Code) EncodedBits(s int) int {
	if s < 0 || s >= len(c.lens) {
		return 0
	}
	return int(c.lens[s])
}

// Encode appends the code for symbol s to w. Encoding a symbol with no
// assigned code is a programming error and panics.
func (c *Code) Encode(w *bitstream.Writer, s int) {
	l := c.lens[s]
	if l == 0 {
		panic(fmt.Sprintf("huffman: encode of unused symbol %d", s))
	}
	w.WriteBits(uint64(c.codes[s]), uint(l))
}

// EncodeAll appends the codes for every symbol in syms to w, packing
// consecutive codes into a local 64-bit accumulator so the per-symbol cost is
// a shift and an or rather than a Writer call. The emitted bits are identical
// to calling Encode per symbol: MSB-first concatenation is associative.
func (c *Code) EncodeAll(w *bitstream.Writer, syms []int) {
	var acc uint64
	var nacc uint
	for _, s := range syms {
		l := uint(c.lens[s])
		if l == 0 {
			panic(fmt.Sprintf("huffman: encode of unused symbol %d", s))
		}
		if nacc+l > 64 {
			w.WriteBits(acc, nacc)
			acc, nacc = 0, 0
		}
		acc = acc<<l | uint64(c.codes[s])
		nacc += l
	}
	if nacc > 0 {
		w.WriteBits(acc, nacc)
	}
}

// lutIndexBits caps the direct-lookup decode table at 2^12 entries (~20 KiB),
// covering every code up to 12 bits in one table probe. SZ quantization codes
// concentrate almost all mass on a few hundred symbols around the interval
// radius, so in practice the fallback walk runs only for rare deep-tail codes.
const lutIndexBits = 12

func (c *Code) buildLUT() {
	bits := uint8(lutIndexBits)
	if c.maxLen < bits {
		bits = c.maxLen
	}
	c.lutBits = bits
	size := 1 << bits
	if cap(c.lutLen) < size {
		c.lutLen = make([]uint8, size)
		c.lutSym = make([]int32, size)
	} else {
		c.lutLen = c.lutLen[:size]
		c.lutSym = c.lutSym[:size]
		clear(c.lutLen)
	}
	for l := uint8(1); l <= bits; l++ {
		count := c.firstSym[l+1] - c.firstSym[l]
		for k := int32(0); k < count; k++ {
			sym := c.symsByCode[c.firstSym[l]+k]
			code := c.firstCode[l] + uint32(k)
			base := code << (bits - l)
			for j := 0; j < 1<<(bits-l); j++ {
				c.lutLen[base+uint32(j)] = l
				c.lutSym[base+uint32(j)] = sym
			}
		}
	}
}

// DecodeAll reads len(out) symbols from r into out, rejecting any symbol
// >= max with ErrCorrupt. It decodes through the direct-lookup table —
// Peek never overruns (it zero-pads), and Skip reports truncation — falling
// back to the canonical per-bit walk only for codes longer than the table
// index.
func (c *Code) DecodeAll(r *bitstream.Reader, out []int, max int) error {
	if c.lutBits == 0 {
		c.buildLUT()
	}
	bits := uint(c.lutBits)
	for i := range out {
		v := r.Peek(bits)
		var s int
		if l := c.lutLen[v]; l != 0 {
			if err := r.Skip(uint(l)); err != nil {
				return err
			}
			s = int(c.lutSym[v])
		} else {
			var err error
			if s, err = c.Decode(r); err != nil {
				return err
			}
		}
		if s >= max {
			return ErrCorrupt
		}
		out[i] = s
	}
	return nil
}

// Decode reads one symbol from r.
func (c *Code) Decode(r *bitstream.Reader) (int, error) {
	var code uint32
	for l := uint8(1); l <= c.maxLen; l++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		code = code<<1 | uint32(b)
		first := c.firstCode[l]
		count := uint32(c.firstSym[l+1] - c.firstSym[l])
		if count > 0 && code >= first && code < first+count {
			return int(c.symsByCode[uint32(c.firstSym[l])+(code-first)]), nil
		}
	}
	return 0, ErrCorrupt
}

// WriteTable serializes the code lengths to w so a decoder can reconstruct
// the canonical code. Lengths are run-length encoded: (zeroRun, len) pairs.
func (c *Code) WriteTable(w *bitstream.Writer) {
	w.WriteBits(uint64(len(c.lens)), 32)
	i := 0
	for i < len(c.lens) {
		if c.lens[i] == 0 {
			run := 0
			for i < len(c.lens) && c.lens[i] == 0 && run < 65535 {
				run++
				i++
			}
			w.WriteBit(0)
			w.WriteBits(uint64(run), 16)
			continue
		}
		w.WriteBit(1)
		w.WriteBits(uint64(c.lens[i]), 6)
		i++
	}
}

// ReadTable reconstructs a Code from a table written by WriteTable.
func ReadTable(r *bitstream.Reader) (*Code, error) {
	c := &Code{}
	var lens []uint8
	if err := ReadTableInto(r, c, &lens); err != nil {
		return nil, err
	}
	return c, nil
}

// ReadTableInto is ReadTable decoding into a caller-owned Code and length
// scratch buffer, so decoders that parse one table per partition reuse the
// table storage across partitions instead of reallocating ~NumSymbols-sized
// arrays each time. *lensBuf is grown as needed and left holding the parsed
// lengths.
func ReadTableInto(r *bitstream.Reader, c *Code, lensBuf *[]uint8) error {
	n64, err := r.ReadBits(32)
	if err != nil {
		return err
	}
	n := int(n64)
	if n < 0 || n > 1<<28 {
		return ErrCorrupt
	}
	lens := *lensBuf
	if cap(lens) < n {
		lens = make([]uint8, n)
	} else {
		lens = lens[:n]
		clear(lens)
	}
	*lensBuf = lens
	i := 0
	for i < n {
		tag, err := r.ReadBit()
		if err != nil {
			return err
		}
		if tag == 0 {
			run, err := r.ReadBits(16)
			if err != nil {
				return err
			}
			if int(run) == 0 || i+int(run) > n {
				return ErrCorrupt
			}
			i += int(run)
			continue
		}
		l, err := r.ReadBits(6)
		if err != nil {
			return err
		}
		if l == 0 || l > MaxCodeLen {
			return ErrCorrupt
		}
		lens[i] = uint8(l)
		i++
	}
	return c.initFrom(lens)
}

// EstimateBits reports the exact compressed payload size in bits for the
// given symbol stream under code c (excluding the table).
func (c *Code) EstimateBits(syms []int) (int, error) {
	total := 0
	for _, s := range syms {
		if s < 0 || s >= len(c.lens) || c.lens[s] == 0 {
			return 0, fmt.Errorf("huffman: symbol %d has no code", s)
		}
		total += int(c.lens[s])
	}
	return total, nil
}

// Histogram counts symbol frequencies over syms for an alphabet of size n.
func Histogram(syms []int, n int) []uint64 {
	freqs := make([]uint64, n)
	HistogramInto(freqs, syms)
	return freqs
}

// HistogramInto zeroes freqs and counts symbol frequencies over syms into it,
// letting hot paths reuse a frequency table across calls.
func HistogramInto(freqs []uint64, syms []int) {
	clear(freqs)
	for _, s := range syms {
		freqs[s]++
	}
}

// CodebookEntropy returns the Shannon entropy (bits/symbol) of a frequency
// table, useful for diagnostics and tests of coding efficiency.
func CodebookEntropy(freqs []uint64) float64 {
	var total uint64
	for _, f := range freqs {
		total += f
	}
	if total == 0 {
		return 0
	}
	var h float64
	for _, f := range freqs {
		if f == 0 {
			continue
		}
		p := float64(f) / float64(total)
		h -= p * math.Log2(p)
	}
	return h
}

// sortSymbolsByLen is used in tests to verify canonical ordering.
func (c *Code) sortedSymbols() []int32 {
	out := append([]int32(nil), c.symsByCode...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
