package huffman

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"lcpio/internal/bitstream"
)

func roundTrip(t *testing.T, freqs []uint64, stream []int) {
	t.Helper()
	c, err := Build(freqs)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	w := bitstream.NewWriter(0)
	c.WriteTable(w)
	for _, s := range stream {
		c.Encode(w, s)
	}
	r := bitstream.NewReader(w.Bytes())
	c2, err := ReadTable(r)
	if err != nil {
		t.Fatalf("ReadTable: %v", err)
	}
	for i, want := range stream {
		got, err := c2.Decode(r)
		if err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("decode %d: got %d want %d", i, got, want)
		}
	}
}

func TestSingleSymbol(t *testing.T) {
	roundTrip(t, []uint64{0, 5, 0}, []int{1, 1, 1, 1})
}

func TestTwoSymbols(t *testing.T) {
	roundTrip(t, []uint64{3, 7}, []int{0, 1, 1, 0, 1})
}

func TestEmptyAlphabetRejected(t *testing.T) {
	if _, err := Build([]uint64{0, 0, 0}); err != ErrNoSymbols {
		t.Fatalf("expected ErrNoSymbols, got %v", err)
	}
	if _, err := Build(nil); err != ErrNoSymbols {
		t.Fatalf("nil freqs: expected ErrNoSymbols, got %v", err)
	}
}

func TestSkewedDistribution(t *testing.T) {
	// Heavily skewed frequencies exercise long codes.
	freqs := make([]uint64, 20)
	f := uint64(1)
	for i := range freqs {
		freqs[i] = f
		f *= 2
	}
	stream := make([]int, 500)
	rng := rand.New(rand.NewSource(1))
	for i := range stream {
		stream[i] = rng.Intn(20)
	}
	roundTrip(t, freqs, stream)
}

func TestFibonacciWorstCase(t *testing.T) {
	// Fibonacci frequencies generate maximal code lengths; with >32 symbols
	// this forces the length-limiting/flattening path.
	freqs := make([]uint64, 40)
	a, b := uint64(1), uint64(1)
	for i := range freqs {
		freqs[i] = a
		a, b = b, a+b
	}
	c, err := Build(freqs)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if c.MaxLen() > MaxCodeLen {
		t.Fatalf("MaxLen %d exceeds cap %d", c.MaxLen(), MaxCodeLen)
	}
	stream := []int{0, 39, 20, 5, 39, 0, 1}
	roundTrip(t, freqs, stream)
}

func TestCanonicalOrdering(t *testing.T) {
	// Symbols with equal lengths must receive increasing codes by symbol id.
	c, err := FromLengths([]uint8{2, 2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 4; s++ {
		if c.codes[s] != uint32(s) {
			t.Fatalf("symbol %d: code %d, want %d", s, c.codes[s], s)
		}
	}
	syms := c.sortedSymbols()
	if len(syms) != 4 {
		t.Fatalf("sortedSymbols len %d", len(syms))
	}
}

func TestFromLengthsKraftViolation(t *testing.T) {
	// Three 1-bit codes violate Kraft.
	if _, err := FromLengths([]uint8{1, 1, 1}); err != ErrBadLengths {
		t.Fatalf("expected ErrBadLengths, got %v", err)
	}
}

func TestFromLengthsOverlongRejected(t *testing.T) {
	if _, err := FromLengths([]uint8{40}); err != ErrBadLengths {
		t.Fatalf("expected ErrBadLengths, got %v", err)
	}
}

func TestDecodeCorrupt(t *testing.T) {
	// An incomplete code leaves some codewords undefined; feeding one of
	// them must yield ErrCorrupt, not a bogus symbol.
	c, err := FromLengths([]uint8{2, 2}) // codes 00 and 01; 1x undefined
	if err != nil {
		t.Fatal(err)
	}
	w := bitstream.NewWriter(0)
	w.WriteBits(0x3, 2) // code 11: not assigned
	w.WriteBits(0, 62)
	r := bitstream.NewReader(w.Bytes())
	if _, err := c.Decode(r); err != ErrCorrupt {
		t.Fatalf("expected ErrCorrupt, got %v", err)
	}
}

func TestEncodeUnusedSymbolPanics(t *testing.T) {
	c, err := Build([]uint64{5, 0, 5})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic encoding unused symbol")
		}
	}()
	c.Encode(bitstream.NewWriter(0), 1)
}

func TestEstimateBitsMatchesEncoding(t *testing.T) {
	freqs := []uint64{10, 20, 5, 1, 40}
	c, err := Build(freqs)
	if err != nil {
		t.Fatal(err)
	}
	stream := []int{0, 1, 2, 3, 4, 4, 4, 1}
	want, err := c.EstimateBits(stream)
	if err != nil {
		t.Fatal(err)
	}
	w := bitstream.NewWriter(0)
	for _, s := range stream {
		c.Encode(w, s)
	}
	if got := w.BitLen(); got != want {
		t.Fatalf("EstimateBits=%d but encoded %d bits", want, got)
	}
}

func TestEstimateBitsRejectsUnknown(t *testing.T) {
	c, _ := Build([]uint64{1, 1})
	if _, err := c.EstimateBits([]int{0, 1, 2}); err == nil {
		t.Fatal("expected error for out-of-alphabet symbol")
	}
}

func TestHistogram(t *testing.T) {
	h := Histogram([]int{0, 1, 1, 3, 3, 3}, 4)
	want := []uint64{1, 2, 0, 3}
	for i := range want {
		if h[i] != want[i] {
			t.Fatalf("hist[%d]=%d want %d", i, h[i], want[i])
		}
	}
}

func TestCodebookEntropy(t *testing.T) {
	// Uniform over 4 symbols: entropy exactly 2 bits.
	if h := CodebookEntropy([]uint64{1, 1, 1, 1}); math.Abs(h-2) > 1e-12 {
		t.Fatalf("entropy %v, want 2", h)
	}
	if h := CodebookEntropy(nil); h != 0 {
		t.Fatalf("empty entropy %v", h)
	}
	if h := CodebookEntropy([]uint64{9}); h != 0 {
		t.Fatalf("single-symbol entropy %v", h)
	}
}

// Property: average code length is within 1 bit of entropy (Huffman bound)
// for random distributions, and always round-trips.
func TestQuickOptimality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(60) + 2
		freqs := make([]uint64, n)
		var total uint64
		for i := range freqs {
			freqs[i] = uint64(rng.Intn(1000))
			total += freqs[i]
		}
		if total == 0 {
			freqs[0] = 1
			total = 1
		}
		c, err := Build(freqs)
		if err != nil {
			return false
		}
		var avg float64
		for s, fq := range freqs {
			if fq > 0 {
				avg += float64(fq) / float64(total) * float64(c.lens[s])
			}
		}
		h := CodebookEntropy(freqs)
		// Huffman is within 1 bit of entropy (plus a hair for the 1-bit
		// minimum on single-symbol alphabets).
		return avg <= h+1.0+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: encode/decode round-trips for random streams.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(30) + 1
		freqs := make([]uint64, n)
		for i := range freqs {
			freqs[i] = uint64(rng.Intn(100) + 1)
		}
		c, err := Build(freqs)
		if err != nil {
			return false
		}
		stream := make([]int, rng.Intn(400))
		for i := range stream {
			stream[i] = rng.Intn(n)
		}
		w := bitstream.NewWriter(0)
		c.WriteTable(w)
		for _, s := range stream {
			c.Encode(w, s)
		}
		r := bitstream.NewReader(w.Bytes())
		c2, err := ReadTable(r)
		if err != nil {
			return false
		}
		for _, want := range stream {
			got, err := c2.Decode(r)
			if err != nil || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	freqs := make([]uint64, 65536)
	for i := range freqs {
		freqs[i] = uint64(rng.Intn(10000))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(freqs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeDecode(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	freqs := make([]uint64, 256)
	for i := range freqs {
		freqs[i] = uint64(rng.Intn(1000) + 1)
	}
	c, err := Build(freqs)
	if err != nil {
		b.Fatal(err)
	}
	stream := make([]int, 4096)
	for i := range stream {
		stream[i] = rng.Intn(256)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := bitstream.NewWriter(8192)
		for _, s := range stream {
			c.Encode(w, s)
		}
		r := bitstream.NewReader(w.Bytes())
		for range stream {
			if _, err := c.Decode(r); err != nil {
				b.Fatal(err)
			}
		}
	}
}
