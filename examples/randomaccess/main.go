// Randomaccess: ZFP's fixed-rate mode makes every 4^d block independently
// addressable — extract a 2-D visualization slice from a compressed 3-D
// volume by decoding only the blocks the slice touches, never the full
// array. This is the headline property of Lindstrom's "Fixed-Rate
// Compressed Floating-Point Arrays" (the paper's reference [8]).
package main

import (
	"flag"
	"fmt"
	"log"

	"lcpio/internal/fpdata"
	"lcpio/internal/zfp"
)

func main() {
	rate := flag.Float64("bpv", 12, "bits per value")
	flag.Parse()

	// A 64^3 NYX-like volume.
	spec, err := fpdata.Lookup("NYX", "")
	if err != nil {
		log.Fatal(err)
	}
	field := fpdata.Generate(spec, 8, 21)
	d := field.Dims[0]

	comp, err := zfp.CompressFixedRate(field.Data, field.Dims, *rate)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("volume: %v (%d values), fixed-rate %g bpv -> %d bytes (ratio %.2f)\n",
		field.Dims, field.NumElements(), *rate, len(comp),
		float64(field.SizeBytes())/float64(len(comp)))

	fr, err := zfp.NewFixedRateReader(comp)
	if err != nil {
		log.Fatal(err)
	}

	// Extract the middle k-slice by decoding only the blocks it crosses:
	// (d/4)^2 blocks out of (d/4)^3 total.
	k := d / 2
	slice := make([]float32, d*d)
	blocksDecoded := 0
	for i := 0; i < d; i += 4 {
		for j := 0; j < d; j += 4 {
			// One block covers i..i+3, j..j+3, k&^3..k&^3+3.
			blkIdx := ((i / 4 * ((d + 3) / 4)) + j/4) * ((d + 3) / 4) // block (i/4, j/4, ...)
			blkIdx += k / 4
			blk, err := fr.DecodeBlock(blkIdx)
			if err != nil {
				log.Fatal(err)
			}
			blocksDecoded++
			for di := 0; di < 4 && i+di < d; di++ {
				for dj := 0; dj < 4 && j+dj < d; dj++ {
					slice[(i+di)*d+j+dj] = blk[(di*4+dj)*4+k%4]
				}
			}
		}
	}
	fmt.Printf("extracted %dx%d slice at k=%d by decoding %d of %d blocks (%.1f%% of the stream)\n",
		d, d, k, blocksDecoded, fr.NumBlocks(),
		100*float64(blocksDecoded)/float64(fr.NumBlocks()))

	// Verify against a full decode.
	full, _, err := zfp.Decompress(comp)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			if slice[i*d+j] != full[(i*d+j)*d+k] {
				log.Fatalf("slice mismatch at (%d,%d)", i, j)
			}
		}
	}
	fmt.Println("slice matches the full decode exactly")
}
