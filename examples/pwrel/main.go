// Pwrel: pointwise-relative versus absolute error bounds on data spanning
// many orders of magnitude (SZ's PW_REL mode, the paper's reference [4]).
// An absolute bound sized for the large values annihilates the small ones;
// the pointwise-relative bound keeps every value to the same number of
// significant digits at a similar stream size.
package main

import (
	"fmt"
	"log"
	"math"

	"lcpio/internal/sz"
)

func main() {
	// A field spanning 8 orders of magnitude, like a density field across
	// a cosmological void/halo boundary.
	n := 1 << 16
	data := make([]float32, n)
	for i := range data {
		decade := float64(i%9) - 4
		data[i] = float32(math.Pow(10, decade) * (1 + 0.2*math.Sin(float64(i)/35)))
	}

	// Absolute bound sized to 0.1% of the data range.
	lo, hi := data[0], data[0]
	for _, v := range data {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	absEB := 1e-3 * float64(hi-lo)
	absComp, err := sz.Compress(data, []int{n}, absEB)
	if err != nil {
		log.Fatal(err)
	}
	absOut, _, err := sz.Decompress(absComp)
	if err != nil {
		log.Fatal(err)
	}

	// Pointwise-relative bound of 0.1%.
	pwComp, err := sz.CompressPWRel(data, []int{n}, 1e-3)
	if err != nil {
		log.Fatal(err)
	}
	pwOut, _, err := sz.DecompressPWRel(pwComp)
	if err != nil {
		log.Fatal(err)
	}

	relErr := func(out []float32) (worst float64) {
		for i, v := range data {
			if v == 0 {
				continue
			}
			if d := math.Abs(float64(out[i])-float64(v)) / math.Abs(float64(v)); d > worst {
				worst = d
			}
		}
		return worst
	}
	fmt.Printf("data: %d values spanning [%.3g, %.3g]\n\n", n, lo, hi)
	fmt.Printf("absolute bound %.3g:   %7d bytes (ratio %5.1f), worst relative error %.3g\n",
		absEB, len(absComp), float64(n*4)/float64(len(absComp)), relErr(absOut))
	fmt.Printf("pointwise-relative 1e-3: %7d bytes (ratio %5.1f), worst relative error %.3g\n",
		len(pwComp), float64(n*4)/float64(len(pwComp)), relErr(pwOut))
	fmt.Println("\nthe absolute bound wipes out the small decades entirely (relative error 1:")
	fmt.Println("small values reconstruct as zero); the pointwise-relative mode keeps")
	fmt.Println("three significant digits everywhere at a similar stream size.")
}
