// Exascale: the introduction's motivating arithmetic at fleet scale. A
// HACC-class campaign produces snapshot sets that take ~10 hours to move at
// 500 GB/s; this example dumps per-node shares of such a snapshot across a
// fleet with contended shared storage, comparing raw dumping, compressed
// dumping, and compressed dumping with Eqn 3 tuning.
package main

import (
	"flag"
	"fmt"
	"log"

	"lcpio/internal/cluster"
	"lcpio/internal/compress"
	"lcpio/internal/core"
	"lcpio/internal/fpdata"
	"lcpio/internal/tables"
)

func main() {
	nodes := flag.Int("nodes", 512, "fleet size")
	perNodeGB := flag.Int64("per-node-gb", 64, "uncompressed snapshot share per node (GiB)")
	ingressGbps := flag.Float64("ingress", 100, "shared storage ingress (Gbps)")
	flag.Parse()

	// Intro arithmetic.
	fmt.Printf("HACC-class snapshot set: %s at 500 GB/s aggregate = %.1f h raw\n",
		tables.FormatSI(float64(cluster.HACCSnapshotBytes), "B"),
		cluster.TransmitHours(cluster.HACCSnapshotBytes, 500e9))

	// Measure a real HACC-like field's SZ ratio at eb 1e-3.
	spec, _ := fpdata.Lookup("HACC", "")
	field := fpdata.Generate(spec, spec.ScaleFor(1<<18), 5)
	eb := compress.AbsBoundFromRelative(1e-3, field.Data)
	codec, _ := compress.Lookup("sz")
	res, err := compress.Evaluate(codec, field.Data, field.Dims, eb)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SZ on HACC-like velocities at eb=1e-3: ratio %.1f -> %.1f h compressed\n\n",
		res.Ratio(), cluster.TransmitHours(int64(float64(cluster.HACCSnapshotBytes)/res.Ratio()), 500e9))

	rec := core.PaperRecommendation()
	cfg := cluster.Config{
		Nodes:            *nodes,
		PerNodeBytes:     *perNodeGB << 30,
		Codec:            "sz",
		RelEB:            1e-3,
		Ratio:            res.Ratio(),
		ServerIngressBps: *ingressGbps * 1e9,
		Seed:             1,
	}
	cmp, err := cluster.Compare(cfg, rec.CompressionFraction, rec.WritingFraction)
	if err != nil {
		log.Fatal(err)
	}

	row := func(name string, r cluster.Result) []string {
		return []string{
			name,
			fmt.Sprintf("%.0f s", r.WallSeconds),
			fmt.Sprintf("%.1f kJ", r.NodeJoules/1e3),
			fmt.Sprintf("%.1f MJ", r.TotalJoules/1e6),
		}
	}
	fmt.Print(tables.Render(
		fmt.Sprintf("%d-node dump, %d GiB/node over %.0f Gbps shared ingress",
			*nodes, *perNodeGB, *ingressGbps),
		[]string{"schedule", "wall", "J/node", "fleet"},
		[][]string{
			row("raw dump", cmp.Raw),
			row("SZ compressed", cmp.Compressed),
			row("SZ + Eqn 3", cmp.Tuned),
		}))
	fmt.Printf("\ncompression speedup: %.1fx wall clock\n", cmp.CompressionSpeedup())
	fmt.Printf("tuning savings on top: %.1f%% fleet energy\n", cmp.TuningEnergySavingsPct())
}
