// Quickstart: compress a scientific field with both lossy codecs, verify
// the error bound, and estimate the energy of compressing + writing it on a
// simulated HPC node at base clock versus the paper's tuned frequencies.
package main

import (
	"fmt"
	"log"

	"lcpio/internal/compress"
	"lcpio/internal/core"
	"lcpio/internal/dvfs"
	"lcpio/internal/fpdata"
	"lcpio/internal/machine"
	"lcpio/internal/nfs"
)

func main() {
	// 1. Generate a NYX-like cosmology field (64^3, seeded).
	spec, err := fpdata.Lookup("NYX", "")
	if err != nil {
		log.Fatal(err)
	}
	field := fpdata.Generate(spec, 8, 42)
	fmt.Printf("field: %s %v (%d values, %.1f MB)\n\n",
		spec.Dataset, field.Dims, field.NumElements(),
		float64(field.SizeBytes())/1e6)

	// 2. Compress with SZ and ZFP at a range-relative 1e-3 bound.
	eb := compress.AbsBoundFromRelative(1e-3, field.Data)
	for _, name := range compress.Names() {
		codec, err := compress.Lookup(name)
		if err != nil {
			log.Fatal(err)
		}
		res, err := compress.Evaluate(codec, field.Data, field.Dims, eb)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-4s ratio %6.2f   max error %.3g (bound %.3g)   PSNR %.1f dB\n",
			name, res.Ratio(), res.MaxAbsError, eb, res.PSNR)
	}

	// 3. Estimate compressing + writing 64 GB of such data on a Broadwell
	// node, at base clock and with Eqn 3 tuning.
	chip := dvfs.Broadwell()
	node := machine.NewNode(chip, 1)
	const totalBytes = 64 << 30

	szCodec, _ := compress.Lookup("sz")
	res, err := compress.Evaluate(szCodec, field.Data, field.Dims, eb)
	if err != nil {
		log.Fatal(err)
	}
	cw, err := machine.CompressionWorkloadWithRatio("sz", totalBytes, 1e-3, res.Ratio(), chip)
	if err != nil {
		log.Fatal(err)
	}
	tr := nfs.DefaultMount().Write(int64(totalBytes / res.Ratio()))
	tw := machine.TransitWorkload(tr, chip)

	rec := core.PaperRecommendation()
	base := node.RunClean(cw, chip.BaseGHz).Joules + node.RunClean(tw, chip.BaseGHz).Joules
	tuned := node.RunClean(cw, rec.CompressionFraction*chip.BaseGHz).Joules +
		node.RunClean(tw, rec.WritingFraction*chip.BaseGHz).Joules

	fmt.Printf("\n64 GB compress+write on %s:\n", chip.Model)
	fmt.Printf("  base clock (%.1f GHz): %8.1f kJ\n", chip.BaseGHz, base/1e3)
	fmt.Printf("  tuned (Eqn 3):         %8.1f kJ  (saved %.1f kJ, %.1f%%)\n",
		tuned/1e3, (base-tuned)/1e3, 100*(base-tuned)/base)
}
