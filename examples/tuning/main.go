// Tuning: sweep a compression workload across a chip's P-states, fit the
// paper's power model P(f) = a*f^b + c to the measurements, and derive the
// energy-optimal frequency — the full Section IV/V methodology on one chip.
package main

import (
	"fmt"
	"log"

	"lcpio/internal/core"
	"lcpio/internal/dvfs"
	"lcpio/internal/machine"
	"lcpio/internal/perf"
	"lcpio/internal/regress"
	"lcpio/internal/tables"
)

func main() {
	chip := dvfs.Skylake()
	node := machine.NewNode(chip, 7)

	// Characterize SZ compressing 1 GiB at eb=1e-3 and sweep it.
	w, err := machine.CompressionWorkload("sz", 1<<30, 1e-3, chip)
	if err != nil {
		log.Fatal(err)
	}
	sweep, err := perf.Run(node, w, "sz on "+chip.Series, perf.Config{})
	if err != nil {
		log.Fatal(err)
	}

	// Fit Eqn 2 to the scaled observations.
	fs, ps, err := sweep.ScaledObservations()
	if err != nil {
		log.Fatal(err)
	}
	fit, err := regress.FitPowerLaw(fs, ps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fitted model on %s: P(f) = %s\n", chip.Model, fit)
	fmt.Printf("goodness of fit: SSE=%.4g RMSE=%.4g R2=%.4g\n\n",
		fit.GF.SSE, fit.GF.RMSE, fit.GF.R2)

	// Plot measurement vs model.
	scaled, _ := sweep.ScaledPower()
	model := make([]float64, len(fs))
	for i, f := range fs {
		model[i] = fit.Eval(f)
	}
	fmt.Print(tables.Plot("scaled power vs frequency", "GHz", "P/P(fmax)",
		[]tables.PlotSeries{
			{Label: "measured", X: fs, Y: scaled},
			{Label: "model", X: fs, Y: model},
		}))

	// Derive the energy-optimal frequency and compare with the paper's rule.
	frac, err := core.EnergyOptimalFraction(sweep)
	if err != nil {
		log.Fatal(err)
	}
	opt, err := core.SavingsAt(sweep, frac)
	if err != nil {
		log.Fatal(err)
	}
	paper, err := core.SavingsAt(sweep, core.PaperRecommendation().CompressionFraction)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nenergy-optimal: %.3f GHz (%.1f%% of base)\n",
		frac*chip.BaseGHz, frac*100)
	fmt.Printf("  %v\n", opt)
	fmt.Printf("paper's rule (0.875 f_max = %.3f GHz):\n", 0.875*chip.BaseGHz)
	fmt.Printf("  %v\n", paper)
}
