// Codeccompare: SZ versus ZFP across the paper's datasets and error bounds
// — compression ratio, maximum error and PSNR for every cell of the
// experiment matrix, using the real codecs on synthetic SDRBench-like
// fields.
package main

import (
	"flag"
	"fmt"
	"log"

	"lcpio/internal/compress"
	"lcpio/internal/fpdata"
	"lcpio/internal/tables"
)

func main() {
	elems := flag.Int("elems", 1<<17, "target field size in elements")
	seed := flag.Int64("seed", 3, "field generation seed")
	flag.Parse()

	specs := fpdata.TableI()
	var rows [][]string
	for _, spec := range specs {
		field := fpdata.Generate(spec, spec.ScaleFor(*elems), *seed)
		for _, rel := range compress.PaperErrorBounds {
			eb := compress.AbsBoundFromRelative(rel, field.Data)
			for _, name := range compress.Names() {
				codec, err := compress.Lookup(name)
				if err != nil {
					log.Fatal(err)
				}
				res, err := compress.Evaluate(codec, field.Data, field.Dims, eb)
				if err != nil {
					log.Fatalf("%s on %s: %v", name, spec.Dataset, err)
				}
				status := "ok"
				if res.MaxAbsError > eb {
					status = "BOUND VIOLATED"
				}
				rows = append(rows, []string{
					spec.Dataset,
					fmt.Sprintf("%g", rel),
					name,
					fmt.Sprintf("%.2f", res.Ratio()),
					fmt.Sprintf("%.2f", res.BitRate()),
					fmt.Sprintf("%.3g", res.MaxAbsError),
					fmt.Sprintf("%.1f", res.PSNR),
					status,
				})
			}
		}
	}
	fmt.Print(tables.Render("SZ vs ZFP on Table-I datasets (range-relative bounds)",
		[]string{"dataset", "eb", "codec", "ratio", "bits/val", "max err", "PSNR dB", "bound"},
		rows))
}
