// Checkpoint: energy of a checkpointing simulation campaign — the use case
// of Moran et al. that the paper's related-work section builds on. An
// application alternates compute phases with checkpoint dumps (compress +
// NFS write), expressed as a phases.Plan; the paper's Eqn 3 applies only to
// the I/O phases, trading a small checkpoint slowdown for energy savings
// that cost no compute-phase performance.
package main

import (
	"flag"
	"fmt"
	"log"

	"lcpio/internal/compress"
	"lcpio/internal/dvfs"
	"lcpio/internal/fpdata"
	"lcpio/internal/machine"
	"lcpio/internal/nfs"
	"lcpio/internal/phases"
	"lcpio/internal/tables"
)

func main() {
	checkpoints := flag.Int("n", 24, "number of checkpoints in the campaign")
	stateGB := flag.Int64("state-gb", 16, "application state size in GiB")
	computeSec := flag.Float64("compute", 600, "compute seconds between checkpoints")
	chipName := flag.String("chip", "Skylake", "chip")
	flag.Parse()

	chip, err := dvfs.ChipByName(*chipName)
	if err != nil {
		log.Fatal(err)
	}
	node := machine.NewNode(chip, 11)

	// Measure the checkpoint state's compressibility with the real codec.
	spec, _ := fpdata.Lookup("NYX", "")
	field := fpdata.Generate(spec, spec.ScaleFor(1<<17), 11)
	eb := compress.AbsBoundFromRelative(1e-3, field.Data)
	codec, _ := compress.Lookup("sz")
	res, err := compress.Evaluate(codec, field.Data, field.Dims, eb)
	if err != nil {
		log.Fatal(err)
	}

	stateBytes := *stateGB << 30
	cw, err := machine.CompressionWorkloadWithRatio("sz", stateBytes, 1e-3, res.Ratio(), chip)
	if err != nil {
		log.Fatal(err)
	}
	tr := nfs.DefaultMount().Write(int64(float64(stateBytes) / res.Ratio()))
	tw := machine.TransitWorkload(tr, chip)

	plan := phases.CheckpointCampaign(*checkpoints, *computeSec, cw, tw)
	cmp, err := phases.Compare(plan, phases.PaperRule(), node)
	if err != nil {
		log.Fatal(err)
	}

	row := func(name string, t phases.Totals) []string {
		io := t.ByClass[phases.Compression]
		io.Seconds += t.ByClass[phases.Writing].Seconds
		io.Joules += t.ByClass[phases.Writing].Joules
		return []string{
			name,
			fmt.Sprintf("%.0f s", t.Seconds),
			tables.FormatSI(t.Joules, "J"),
			fmt.Sprintf("%.1f s", io.Seconds/float64(*checkpoints)),
			tables.FormatSI(io.Joules/float64(*checkpoints), "J"),
		}
	}
	fmt.Print(tables.Render(
		fmt.Sprintf("checkpoint campaign on %s: %d checkpoints of %d GiB (SZ ratio %.1f), %.0f s compute each",
			chip.Model, *checkpoints, *stateGB, res.Ratio(), *computeSec),
		[]string{"schedule", "campaign time", "campaign energy", "ckpt time", "ckpt energy"},
		[][]string{
			row("base clock", cmp.Base),
			row("Eqn 3 tuned", cmp.Tuned),
		}))
	fmt.Printf("\ncampaign energy saved: %.2f%%  runtime cost: +%.2f%%\n",
		cmp.EnergySavedPct(), cmp.RuntimeIncreasePct())
	fmt.Println("compute phases are untouched; the savings come entirely from the I/O phases.")
}
