// Datadump: the paper's Section VI-B use case end-to-end — compress 512 GB
// of NYX data with SZ at four error bounds and push it over a 10 GbE NFS
// mount, comparing base-clock energy against the Eqn 3 tuned schedule
// (Figure 6).
package main

import (
	"flag"
	"fmt"
	"log"

	"lcpio/internal/core"
	"lcpio/internal/tables"
)

func main() {
	gb := flag.Int64("gb", 512, "uncompressed data volume in GiB")
	chip := flag.String("chip", "Broadwell", "chip to run on")
	codec := flag.String("codec", "sz", "codec: sz or zfp")
	seed := flag.Int64("seed", 1, "experiment seed")
	flag.Parse()

	cfg := core.Config{Seed: *seed, RatioElems: 1 << 17}
	results, err := core.RunDataDump(cfg, core.DumpConfig{
		TotalBytes: *gb << 30,
		Chip:       *chip,
		Codec:      *codec,
	})
	if err != nil {
		log.Fatal(err)
	}

	rows := make([][]string, 0, len(results))
	for _, r := range results {
		rows = append(rows, []string{
			fmt.Sprintf("%g", r.EB),
			fmt.Sprintf("%.1f", r.Ratio),
			tables.FormatBytes(r.CompressedBytes),
			tables.FormatSI(r.BaseTotalJ(), "J"),
			tables.FormatSI(r.TunedTotalJ(), "J"),
			tables.FormatSI(r.SavedJ(), "J"),
			fmt.Sprintf("%.1f%%", r.SavedPct()),
			fmt.Sprintf("+%.1f%%", 100*(r.TunedSeconds/r.BaseSeconds-1)),
		})
	}
	fmt.Print(tables.Render(
		fmt.Sprintf("%d GiB dump with %s on %s: base clock vs Eqn 3 tuning", *gb, *codec, *chip),
		[]string{"eb", "ratio", "compressed", "base", "tuned", "saved", "saved%", "runtime"},
		rows))

	savedJ, savedPct, err := core.AverageDumpSavings(results)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\naverage: %s saved (%.1f%%)\n", tables.FormatSI(savedJ, "J"), savedPct)
}
