#!/bin/sh
# Codec benchmark harness: runs the sz and zfp engine benchmarks (worker
# scaling serial vs parallel, handle reuse vs one-shot, telemetry on vs off)
# and writes the parsed results to BENCH_codec.json at the repo root.
#
# Numbers are host-dependent: worker scaling only shows real speedup when the
# machine has that many idle cores. LCPIO_BENCH_DIM sets the cube edge of the
# float32 test field (default 256 here, i.e. 256^3 = 64 MiB raw; the in-test
# default is a quick 64).
set -eu
cd "$(dirname "$0")/.."

DIM="${LCPIO_BENCH_DIM:-256}"
BENCHTIME="${LCPIO_BENCH_TIME:-3x}"
BENCHCOUNT="${LCPIO_BENCH_COUNT:-3}"
OUT="BENCH_codec.json"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

echo "running codec benchmarks (dim=${DIM}^3 float32, benchtime=${BENCHTIME}, count=${BENCHCOUNT})..." >&2
LCPIO_BENCH_DIM="$DIM" go test -run '^$' \
    -bench 'CompressWorkers|DecompressWorkers|CompressorReuse|Telemetry' \
    -benchtime "$BENCHTIME" -count "$BENCHCOUNT" -benchmem \
    ./internal/sz/ ./internal/zfp/ | tee "$RAW" >&2

# Parse `go test -bench` lines into a JSON array. A full line looks like:
#   BenchmarkFoo/sub-8  3  123 ns/op  45.6 MB/s  789 B/op  5 allocs/op
# MB/s appears only for benchmarks that call SetBytes. With -count > 1 each
# benchmark repeats; the fastest repetition is kept (minimum-noise estimator)
# and the number of merged runs is recorded. A scaling_efficiency record per
# codec (workers=8 MB/s over workers=1 MB/s, compress and decompress) is
# appended after the raw entries.
awk -v dim="$DIM" '
/^pkg:/ { pkg = $2 }
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    iters = $2; ns = ""; mbs = "null"; bop = ""; allocs = ""
    for (i = 3; i < NF; i++) {
        if ($(i+1) == "ns/op") ns = $i
        if ($(i+1) == "MB/s") mbs = $i
        if ($(i+1) == "B/op") bop = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (ns == "") next
    key = pkg "|" name
    runs[key]++
    if (!(key in best_ns) || ns + 0 < best_ns[key] + 0) {
        best_ns[key] = ns; best_iters[key] = iters
        best_mbs[key] = mbs; best_bop[key] = bop; best_allocs[key] = allocs
        if (!(key in seen)) { order[++nkeys] = key; seen[key] = 1 }
    }
}
END {
    printf "[\n"
    for (k = 1; k <= nkeys; k++) {
        key = order[k]
        split(key, kp, "|")
        printf "  {\"pkg\": \"%s\", \"name\": \"%s\", \"dim\": %s, \"iters\": %s, \"runs\": %d, \"ns_per_op\": %s, \"mb_per_s\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s},\n", \
            kp[1], kp[2], dim, best_iters[key], runs[key], best_ns[key], best_mbs[key], best_bop[key], best_allocs[key]
    }
    n = 0
    for (k = 1; k <= nkeys; k++) {
        key = order[k]
        split(key, kp, "|")
        if (kp[2] ~ /^Benchmark(Compress|Decompress)Workers\/workers=(1|8)$/ && best_mbs[key] != "null") {
            dir = (kp[2] ~ /Decompress/) ? "decompress" : "compress"
            wk = (kp[2] ~ /workers=8/) ? 8 : 1
            tput[kp[1] "|" dir "|" wk] = best_mbs[key]
            pkgs[kp[1]] = 1
        }
    }
    for (p in pkgs) {
        c1 = tput[p "|compress|1"]; c8 = tput[p "|compress|8"]
        d1 = tput[p "|decompress|1"]; d8 = tput[p "|decompress|8"]
        ce = (c1 + 0 > 0) ? sprintf("%.3f", c8 / c1) : "null"
        de = (d1 + 0 > 0) ? sprintf("%.3f", d8 / d1) : "null"
        if (n++) printf ",\n"
        printf "  {\"pkg\": \"%s\", \"name\": \"scaling_efficiency\", \"dim\": %s, \"compress_8w_over_1w\": %s, \"decompress_8w_over_1w\": %s}", \
            p, dim, ce, de
    }
    printf "\n]\n"
}
' "$RAW" > "$OUT"

echo "wrote $OUT" >&2

# Checkpoint-store pipeline benchmark: measures the pipelined scheduler's
# overlap margin against the serial (compress-everything-then-write)
# schedule and the retry path's simulated overhead under seeded faults.
echo "running ckpt pipeline benchmark..." >&2
LCPIO_BENCH_CKPT_OUT="$(pwd)/BENCH_ckpt.json" go test -run TestEmitBenchJSON \
    -count=1 ./internal/ckpt/ >&2
echo "wrote BENCH_ckpt.json" >&2

# Erasure-coding benchmark: Reed–Solomon encode/reconstruct throughput,
# the measured parity overhead of a real parity write, and the
# reconstruct-vs-redump energy economics under Eqn 3 clocks.
echo "running erasure-coding benchmark..." >&2
LCPIO_BENCH_EC_OUT="$(pwd)/BENCH_ec.json" go test -run TestEmitECBenchJSON \
    -count=1 ./internal/ckpt/ >&2
echo "wrote BENCH_ec.json" >&2

# Incremental-checkpoint benchmark: content-defined chunking and digest
# throughput, dedup ratio and wire-byte ratio across a churn sweep, and the
# delta-vs-full energy economics (hash cost vs avoided write) at the 10%
# acceptance churn point.
echo "running dedup benchmark..." >&2
LCPIO_BENCH_DEDUP_OUT="$(pwd)/BENCH_dedup.json" go test -run TestEmitDedupBenchJSON \
    -count=1 ./internal/ckpt/ >&2
echo "wrote BENCH_dedup.json" >&2

# Telemetry-overhead benchmark: sz codec throughput with the obs registry
# off vs on (the issue's < 5% regression gate), plus export latency for
# every serializer (JSON, Prometheus, Chrome trace, folded stacks) over a
# ~15k-span registry.
echo "running telemetry overhead benchmark..." >&2
LCPIO_BENCH_OBS_OUT="$(pwd)/BENCH_obs.json" go test -run TestEmitObsBenchJSON \
    -count=1 ./internal/obs/ >&2
echo "wrote BENCH_obs.json" >&2

# Checkpoint-service benchmark: concurrent tenant sweep against one lcpiod
# instance on a saturating mount — per-tenant and aggregate goodput, p99
# admission latency, queue waits, and the saturation knee (first tenant
# count whose sessions report backpressure).
echo "running checkpoint-service benchmark..." >&2
LCPIO_BENCH_SVC_OUT="$(pwd)/BENCH_svc.json" go test -run TestEmitSvcBenchJSON \
    -count=1 ./internal/svc/ >&2
echo "wrote BENCH_svc.json" >&2

# In-transit compression benchmark: compress-vs-raw goodput at three link
# bandwidths, the break-even link bandwidth per codec/bound (closed form
# checked against the sweep in tests), and the wire-codec overhead of a
# compressed-wire dump against lcpiod on the saturating bench mount.
echo "running in-transit compression benchmark..." >&2
LCPIO_BENCH_TRANSIT_OUT="$(pwd)/BENCH_transit.json" go test -run TestEmitTransitBenchJSON \
    -count=1 ./internal/transit/ >&2
echo "wrote BENCH_transit.json" >&2

# Online-advisor benchmark: sketch cost vs a full compress.Evaluate grid
# (the >= 10x cheapness claim), Decide latency over the whole search
# space, and per-recipe regret of the sketch-driven pick against the
# exhaustive sweep optimum.
echo "running online-advisor benchmark..." >&2
LCPIO_BENCH_ADVISOR_OUT="$(pwd)/BENCH_advisor.json" go test -run TestEmitAdvisorBenchJSON \
    -count=1 ./internal/advisor/ >&2
echo "wrote BENCH_advisor.json" >&2
