#!/bin/sh
# Extended tier-1 gate: formatting, static vetting, the full test suite
# under the race detector (the obs registry, codecs' parallel paths, the
# ckpt pipeline and the cluster simulator all exercise real concurrency),
# and every fuzz target replayed over its seed corpus. See ROADMAP.md.
set -eux
cd "$(dirname "$0")/.."
fmt="$(gofmt -l .)"
if [ -n "$fmt" ]; then
    echo "gofmt needed on:" >&2
    echo "$fmt" >&2
    exit 1
fi
go vet ./...
go test -race ./...
# Fuzz seed-corpus replay: every Fuzz target re-runs its seeds, which
# include pinned golden streams of all surviving format versions, so codec
# format changes are exercised against old streams on every gate run
# (FuzzSvcFrame replays the checkpoint-service wire-framing corpus here,
# and FuzzSketch the advisor's hostile-field corpus).
go test -run '^Fuzz' ./...

# Daemon concurrency gate: the checkpoint service must sustain 8
# simultaneous tenant streams race-clean with byte-identical restores, and
# its admission queue must drain under session pressure. Run by name (and
# again as part of the -race sweep above) so a regression is unmissable.
go test -race -count=1 -v \
    -run '^(TestConcurrentTenantsByteIdentical|TestAdmissionQueuesOnSessionPressure|TestBackpressureEngages)$' \
    ./internal/svc/

# Advisor regret gate: on every held-out fpdata recipe the sketch-driven
# pick must land within 5% modeled energy of the exhaustive sweep optimum,
# and the online feedback loop must shrink ratio error dump over dump. Run
# by name so a calibration regression is unmissable.
go test -race -count=1 -v \
    -run '^(TestAdvisorRegretGate|TestFeedbackConvergence)$' \
    ./internal/advisor/

# Worker-scaling gate: on hosts with >= 8 cores, 8-worker compression must
# reach >= 3x the 1-worker throughput on both codecs (the tests self-skip on
# narrower machines, where wall-clock scaling assertions are meaningless).
LCPIO_SCALING_GATE=1 go test -run '^TestScalingGate$' -count=1 -v \
    ./internal/sz/ ./internal/zfp/

# `lcpio report` smoke: record a traced checkpoint write plus its campaign
# energy report, then replay the trace through the offline report renderer
# and re-export it as a Chrome trace and folded stacks.
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
go build -o "$tmp/lcpio" ./cmd/lcpio
"$tmp/lcpio" -trace "$tmp/trace.json" ckpt write -out "$tmp/set.lcp" \
    -ranks 2 -fields 1 -elems 4096 -energy -iters 2 -compute 1 >/dev/null
"$tmp/lcpio" report -in "$tmp/trace.json" | grep -q 'ckpt.write'
"$tmp/lcpio" report -in "$tmp/trace.json" -chrome-out "$tmp/trace_chrome.json" \
    -folded-out "$tmp/trace.folded" >/dev/null
test -s "$tmp/trace_chrome.json"
test -s "$tmp/trace.folded"
