#!/bin/sh
# Extended tier-1 gate: formatting, static vetting, the full test suite
# under the race detector (the obs registry, codecs' parallel paths, the
# ckpt pipeline and the cluster simulator all exercise real concurrency),
# and every fuzz target replayed over its seed corpus. See ROADMAP.md.
set -eux
cd "$(dirname "$0")/.."
fmt="$(gofmt -l .)"
if [ -n "$fmt" ]; then
    echo "gofmt needed on:" >&2
    echo "$fmt" >&2
    exit 1
fi
go vet ./...
go test -race ./...
go test -run '^Fuzz' ./...

# `lcpio report` smoke: record a traced checkpoint write plus its campaign
# energy report, then replay the trace through the offline report renderer
# and re-export it as a Chrome trace and folded stacks.
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
go build -o "$tmp/lcpio" ./cmd/lcpio
"$tmp/lcpio" -trace "$tmp/trace.json" ckpt write -out "$tmp/set.lcp" \
    -ranks 2 -fields 1 -elems 4096 -energy -iters 2 -compute 1 >/dev/null
"$tmp/lcpio" report -in "$tmp/trace.json" | grep -q 'ckpt.write'
"$tmp/lcpio" report -in "$tmp/trace.json" -chrome-out "$tmp/trace_chrome.json" \
    -folded-out "$tmp/trace.folded" >/dev/null
test -s "$tmp/trace_chrome.json"
test -s "$tmp/trace.folded"
