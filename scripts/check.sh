#!/bin/sh
# Extended tier-1 gate: formatting, static vetting, the full test suite
# under the race detector (the obs registry, codecs' parallel paths, the
# ckpt pipeline and the cluster simulator all exercise real concurrency),
# and every fuzz target replayed over its seed corpus. See ROADMAP.md.
set -eux
cd "$(dirname "$0")/.."
fmt="$(gofmt -l .)"
if [ -n "$fmt" ]; then
    echo "gofmt needed on:" >&2
    echo "$fmt" >&2
    exit 1
fi
go vet ./...
go test -race ./...
go test -run '^Fuzz' ./...
