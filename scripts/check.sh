#!/bin/sh
# Extended tier-1 gate: static vetting plus the full test suite under the
# race detector (the obs registry, codecs' parallel paths and the cluster
# simulator all exercise real concurrency). See ROADMAP.md.
set -eux
cd "$(dirname "$0")/.."
go vet ./...
go test -race ./...
