package lcpio_test

import (
	"fmt"
	"math"

	"lcpio"
)

// ExampleCodec shows the error-bound contract both codecs provide.
func ExampleCodec() {
	data := make([]float32, 4096)
	for i := range data {
		data[i] = float32(math.Sin(float64(i) / 40))
	}
	codec, _ := lcpio.LookupCodec("sz")
	buf, _ := codec.Compress(data, []int{64, 64}, 1e-3)
	out, dims, _ := codec.Decompress(buf)

	worst := 0.0
	for i := range data {
		if d := math.Abs(float64(out[i]) - float64(data[i])); d > worst {
			worst = d
		}
	}
	fmt.Printf("dims %v, bound held: %v\n", dims, worst <= 1e-3)
	// Output:
	// dims [64 64], bound held: true
}

// ExampleGovernor mirrors the paper's cpufreq-set usage: snap a requested
// frequency onto the 50 MHz P-state grid.
func ExampleGovernor() {
	g := lcpio.NewGovernor(lcpio.Broadwell())
	rec := lcpio.PaperRecommendation()
	fmt.Printf("compression: %.2f GHz\n", g.SetScaled(rec.CompressionFraction))
	fmt.Printf("data writing: %.2f GHz\n", g.SetScaled(rec.WritingFraction))
	// Output:
	// compression: 1.75 GHz
	// data writing: 1.70 GHz
}

// ExampleFitPowerLaw fits the paper's Eqn 2 to synthetic observations and
// recovers the exponent.
func ExampleFitPowerLaw() {
	var fs, ps []float64
	for f := 0.8; f <= 2.001; f += 0.05 {
		fs = append(fs, f)
		ps = append(ps, 0.0064*math.Pow(f, 5.3)+0.743) // the Broadwell fit
	}
	fit, _ := lcpio.FitPowerLaw(fs, ps)
	fmt.Printf("b = %.1f, c = %.2f\n", fit.B, fit.C)
	// Output:
	// b = 5.3, c = 0.74
}

// ExampleChip shows the Table II hardware matrix.
func ExampleChip() {
	for _, c := range lcpio.Chips() {
		fmt.Printf("%s (%s): %.1f-%.1f GHz\n", c.Model, c.Series, c.MinGHz, c.BaseGHz)
	}
	// Output:
	// Xeon D-1548 (Broadwell): 0.8-2.0 GHz
	// Xeon Silver 4114 (Skylake): 0.8-2.2 GHz
}

// ExampleTableI lists the paper's datasets.
func ExampleTableI() {
	for _, s := range lcpio.TableI() {
		fmt.Printf("%s %v\n", s.Dataset, s.Dims)
	}
	// Output:
	// CESM-ATM [26 1800 3600]
	// HACC [1 280953867]
	// NYX [512 512 512]
}
